// Shared test fixture: a controlled two-node testbed (scanner ↔ one or more
// configured hosts), mirroring the paper's §3.5 validation setup where
// ground-truth IWs are known and packet traces are inspected.
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "core/estimator.hpp"
#include "core/host_prober.hpp"
#include "httpd/http_server.hpp"
#include "inetmodel/adversarial.hpp"
#include "inetmodel/profiles.hpp"
#include "netsim/network.hpp"
#include "tcpstack/host.hpp"
#include "tls/tls_server.hpp"
#include "util/strings.hpp"

namespace iwscan::test {

inline const net::IPv4Address kScannerIp{192, 0, 2, 1};

/// Minimal SessionServices bound straight to the network (no scan engine):
/// lets tests drive one estimator / prober at a time.
class DirectServices final : public scan::SessionServices, public sim::Endpoint {
 public:
  explicit DirectServices(sim::Network& network) : network_(network) {
    network_.attach(kScannerIp, this);
  }
  ~DirectServices() override { network_.detach(kScannerIp); }

  void set_handler(std::function<void(const net::Datagram&)> handler) {
    handler_ = std::move(handler);
  }

  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (datagram && handler_) handler_(*datagram);
  }

  void send_packet(net::Bytes bytes) override { network_.send(std::move(bytes)); }
  sim::EventLoop& loop() override { return network_.loop(); }
  net::IPv4Address scanner_address() const override { return kScannerIp; }
  std::uint16_t allocate_port(net::IPv4Address) override { return next_port_++; }
  std::uint64_t session_seed(net::IPv4Address) override {
    return seed_ += 0x9e3779b97f4a7c15ULL;
  }

 private:
  sim::Network& network_;
  std::function<void(const net::Datagram&)> handler_;
  std::uint16_t next_port_ = 40000;
  std::uint64_t seed_ = 0x5eed;
};

class Testbed {
 public:
  explicit Testbed(std::uint64_t seed = 1)
      : network_(loop_, seed), services_(network_) {
    sim::PathConfig path;
    path.latency = sim::msec(10);
    network_.set_default_path(path);
  }

  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return network_; }
  DirectServices& services() { return services_; }

  tcp::TcpHost& add_http_host(net::IPv4Address ip, const tcp::StackConfig& stack,
                              http::WebConfig web) {
    auto host = std::make_unique<tcp::TcpHost>(network_, ip, stack, 99);
    host->listen(80, http::HttpServerApp::factory(std::move(web)));
    network_.attach(ip, host.get());
    hosts_.push_back(std::move(host));
    return *hosts_.back();
  }

  tcp::TcpHost& add_tls_host(net::IPv4Address ip, const tcp::StackConfig& stack,
                             tls::TlsConfig config) {
    auto host = std::make_unique<tcp::TcpHost>(network_, ip, stack, 99);
    host->listen(443, tls::TlsServerApp::factory(std::move(config)));
    network_.attach(ip, host.get());
    hosts_.push_back(std::move(host));
    return *hosts_.back();
  }

  /// Run one estimation connection; returns the observation.
  core::ConnObservation estimate(net::IPv4Address target, std::uint16_t port,
                                 core::EstimatorConfig config, net::Bytes request) {
    core::ConnObservation result;
    bool done = false;
    core::IwEstimator estimator(services_, target, port, config, std::move(request),
                                [&](const core::ConnObservation& observation) {
                                  result = observation;
                                  done = true;
                                });
    services_.set_handler(
        [&](const net::Datagram& datagram) { estimator.on_datagram(datagram); });
    estimator.start();
    while (!done && loop_.step()) {
    }
    services_.set_handler(nullptr);
    return result;
  }

  /// Run a full multi-probe host session; returns the host record.
  core::HostScanRecord probe_host(net::IPv4Address target,
                                  const core::IwScanConfig& config) {
    core::HostScanRecord record;
    bool done = false;
    core::HostProber prober(
        services_, target, config,
        [&](const core::HostScanRecord& r) { record = r; }, [&] { done = true; });
    services_.set_handler(
        [&](const net::Datagram& datagram) { prober.on_datagram(datagram); });
    prober.start();
    while (!done && loop_.step()) {
    }
    services_.set_handler(nullptr);
    return record;
  }

  /// Standard HTTP request the strategies would send first.
  static net::Bytes http_get(net::IPv4Address host, std::string_view path = "/") {
    std::string req = "GET " + std::string(path) + " HTTP/1.1\r\nHost: " +
                      host.to_string() + "\r\nConnection: close\r\n\r\n";
    return net::to_bytes(req);
  }

 private:
  sim::EventLoop loop_;
  sim::Network network_;
  DirectServices services_;
  std::vector<std::unique_ptr<tcp::TcpHost>> hosts_;
};

// ---------------------------------------------------------------------------
// Scenario DSL: one hostile host vs. the full scan engine (not the bare
// prober) so every run also exercises demux, pacing, budgets and teardown.
// Each scenario is pure data — the battery in adversarial_test.cpp is a
// table of these.
// ---------------------------------------------------------------------------

/// One adversarial-internet scenario: the hostile behavior to install, how
/// to probe it, and what the scan is expected to conclude.
struct Scenario {
  std::string_view name;
  model::AdversarialBehavior behavior{};
  core::ProbeProtocol protocol = core::ProbeProtocol::Http;
  core::HostOutcome expect_outcome{};
  core::ProbeAnomaly expect_anomaly{};
  scan::SessionBudget budget{};  // engine defaults unless overridden
  int max_redirect_hops = 1;     // probe-side redirect budget
  int max_connections = 2;
  /// Virtual-time ceiling for the whole run — generous; the real guarantee
  /// under test is that the engine finishes on its own well before this.
  sim::SimTime deadline = sim::sec(900);
};

struct ScenarioResult {
  core::HostScanRecord record;
  scan::EngineStats stats;
  std::size_t live_sessions = 0;  // engine sessions alive after the run
  sim::SimTime elapsed{};         // virtual time from start() to done()
  bool completed = false;         // done() reached before the deadline
};

/// Run one scenario to completion on a fresh single-host world. The target
/// allowlist is a /32, so exactly one record is produced.
inline ScenarioResult run_scenario(const Scenario& scenario,
                                   std::uint64_t scan_seed = 7) {
  const net::IPv4Address target{10, 66, 0, 1};

  sim::EventLoop loop;
  sim::Network network(loop, 1);
  sim::PathConfig path;
  path.latency = sim::msec(10);
  network.set_default_path(path);

  model::AdversarialHost host =
      model::make_adversarial_host(network, target, scenario.behavior, 0xfeed);
  network.attach(target, host.endpoint.get());

  core::IwScanConfig probe;
  probe.protocol = scenario.protocol;
  probe.port = scenario.protocol == core::ProbeProtocol::Http ? 80 : 443;
  probe.http.max_redirect_hops = scenario.max_redirect_hops;
  probe.http.max_connections = scenario.max_connections;

  ScenarioResult result;
  core::IwProbeModule module(
      probe, [&](const core::HostScanRecord& r) { result.record = r; });

  scan::EngineConfig config;
  config.scanner_address = kScannerIp;
  config.rate_pps = 1000;
  config.max_outstanding = 16;
  config.seed = scan_seed;
  config.budget = scenario.budget;

  scan::ScanEngine engine(network, config,
                          scan::TargetGenerator({net::Cidr{target, 32}}, {},
                                                scan_seed, 1.0),
                          module);
  const sim::SimTime start = loop.now();
  engine.start();
  while (!engine.done() && loop.now() - start < scenario.deadline && loop.step()) {
  }
  result.completed = engine.done();
  result.elapsed = loop.now() - start;
  result.stats = engine.stats();
  result.live_sessions = engine.live_sessions();
  network.detach(target);
  return result;
}

/// Scan seed for seed-sweep CI lanes: IWSCAN_SCAN_SEED overrides the
/// default, so the same binaries can be replayed under several seeds.
inline std::uint64_t env_scan_seed(std::uint64_t fallback = 7) {
  const char* raw = std::getenv("IWSCAN_SCAN_SEED");
  if (raw == nullptr) return fallback;
  const auto parsed = util::parse_u64(raw);
  return parsed ? *parsed : fallback;
}

}  // namespace iwscan::test
