// Internet model: registry invariants, ground-truth purity, population
// statistics matching the encoded anchors, and lazy host materialization.
#include <gtest/gtest.h>

#include <map>

#include "inetmodel/censys_certs.hpp"
#include "inetmodel/internet.hpp"

namespace iwscan::model {
namespace {

// ----------------------------------------------------------- registry ----

TEST(AsRegistry, PrefixesDoNotOverlap) {
  const auto registry = AsRegistry::standard(18);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  for (const auto& as : registry.all()) {
    for (const auto& prefix : as.prefixes) {
      ranges.emplace_back(prefix.first().value(),
                          prefix.first().value() + prefix.size() - 1);
    }
  }
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].first, ranges[i - 1].second) << "overlap at " << i;
  }
}

TEST(AsRegistry, FindIsConsistentWithPrefixes) {
  const auto registry = AsRegistry::standard(18);
  for (const auto& as : registry.all()) {
    for (const auto& prefix : as.prefixes) {
      EXPECT_EQ(registry.find(prefix.first()), &as);
      EXPECT_EQ(registry.find(prefix.at(prefix.size() - 1)), &as);
    }
  }
  EXPECT_EQ(registry.find(net::IPv4Address(1, 1, 1, 1)), nullptr);
  EXPECT_EQ(registry.find(net::IPv4Address(172, 16, 0, 1)), nullptr);
}

TEST(AsRegistry, LookupByAsnAndName) {
  const auto registry = AsRegistry::standard(18);
  const auto* cloudflare = registry.by_asn(13335);
  ASSERT_NE(cloudflare, nullptr);
  EXPECT_EQ(cloudflare->name, "Cloudflare");
  EXPECT_EQ(registry.by_name("Akamai")->asn, 20940u);
  EXPECT_EQ(registry.by_asn(999999), nullptr);
  EXPECT_EQ(registry.by_name("nope"), nullptr);
}

TEST(AsRegistry, PaperNamedNetworksExist) {
  const auto registry = AsRegistry::standard(18);
  for (const char* name : {"Amazon-EC2", "Cloudflare", "Akamai", "Microsoft-Azure",
                           "GoDaddy", "Comcast", "Telmex", "VodafonIT",
                           "KoreaTelecom", "Nat.Int.Backbone"}) {
    EXPECT_NE(registry.by_name(name), nullptr) << name;
  }
}

TEST(AsRegistry, PopularBlocksOnlyInContentNetworks) {
  const auto registry = AsRegistry::standard(18);
  for (const auto& as : registry.all()) {
    const bool content = as.kind == AsKind::Cloud || as.kind == AsKind::Cdn ||
                         as.kind == AsKind::Hoster;
    EXPECT_EQ(as.popular_prefix.has_value(), content) << as.name;
    if (as.popular_prefix) {
      EXPECT_TRUE(as.prefixes.front().contains(as.popular_prefix->first()));
      EXPECT_TRUE(registry.is_popular(as.popular_prefix->first()));
    }
  }
}

TEST(AsRegistry, ScanSpaceMatchesPrefixSizes) {
  const auto registry = AsRegistry::standard(18);
  const auto space = registry.scan_space();
  std::uint64_t total = 0;
  for (const auto& cidr : space) total += cidr.size();
  EXPECT_EQ(total, registry.scan_space_size());
  EXPECT_LE(total, 1ull << 18);
  EXPECT_GT(total, (1ull << 18) / 2) << "most of the universe is allocated";
}

// ------------------------------------------------------- censys certs ----

TEST(CertChainDistribution, MatchesPublishedAnchors) {
  util::Rng rng(1);
  const int n = 200'000;
  double sum = 0;
  int ge640 = 0;
  int ge2176 = 0;
  std::size_t min_len = SIZE_MAX;
  std::size_t max_len = 0;
  for (int i = 0; i < n; ++i) {
    const std::size_t length = CertChainDistribution::sample(rng);
    sum += static_cast<double>(length);
    ge640 += length >= 640;
    ge2176 += length >= 2176;
    min_len = std::min(min_len, length);
    max_len = std::max(max_len, length);
  }
  EXPECT_NEAR(sum / n, 2186.0, 220.0);          // mean 2186 B
  EXPECT_NEAR(ge640 / double(n), 0.86, 0.01);   // P(≥640) = 0.86
  EXPECT_NEAR(ge2176 / double(n), 0.50, 0.01);  // P(≥2176) = 0.50
  EXPECT_GE(min_len, CertChainDistribution::kMinBytes);
  EXPECT_LE(max_len, CertChainDistribution::kMaxBytes);
}

TEST(CertChainDistribution, CcdfIsMonotoneAndAnchored) {
  EXPECT_DOUBLE_EQ(CertChainDistribution::ccdf(0), 1.0);
  EXPECT_NEAR(CertChainDistribution::ccdf(640), 0.86, 0.001);
  EXPECT_NEAR(CertChainDistribution::ccdf(2176), 0.50, 0.001);
  EXPECT_EQ(CertChainDistribution::ccdf(70'000), 0.0);
  double previous = 1.0;
  for (double bytes = 0; bytes < 66'000; bytes += 500) {
    const double value = CertChainDistribution::ccdf(bytes);
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

TEST(CertChainDistribution, SampleForIsPure) {
  EXPECT_EQ(CertChainDistribution::sample_for(5, 100),
            CertChainDistribution::sample_for(5, 100));
  // Different keys should usually differ.
  int distinct = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (CertChainDistribution::sample_for(5, k) !=
        CertChainDistribution::sample_for(5, k + 1)) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 90);
}

// ------------------------------------------------------- ground truth ----

TEST(GroundTruth, PureFunctionOfSeedAndIp) {
  const auto registry = AsRegistry::standard(16);
  const net::IPv4Address ip{10, 0, 1, 77};
  const auto a = synthesize_host(registry, 42, ip);
  const auto b = synthesize_host(registry, 42, ip);
  EXPECT_EQ(a.present, b.present);
  EXPECT_EQ(a.http, b.http);
  EXPECT_EQ(a.tls, b.tls);
  EXPECT_EQ(a.http_iw.segments, b.http_iw.segments);
  EXPECT_EQ(a.chain_bytes, b.chain_bytes);
  EXPECT_EQ(a.rdns, b.rdns);
  EXPECT_EQ(a.path_mtu, b.path_mtu);
}

TEST(GroundTruth, OutsideUniverseIsAbsent) {
  const auto registry = AsRegistry::standard(16);
  const auto gt = synthesize_host(registry, 42, net::IPv4Address(8, 8, 8, 8));
  EXPECT_FALSE(gt.present);
}

TEST(GroundTruth, DensityApproximatesArchetype) {
  const auto registry = AsRegistry::standard(18);
  const auto* comcast = registry.by_name("Comcast");
  ASSERT_NE(comcast, nullptr);
  const auto& prefix = comcast->prefixes.front();
  int present = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    // Skip the (nonexistent for access) popular block; sample the middle.
    const auto ip = prefix.at(prefix.size() / 2 + i);
    present += synthesize_host(registry, 42, ip).present;
  }
  EXPECT_NEAR(present / double(n), comcast->archetype.host_density, 0.03);
}

TEST(GroundTruth, FewDataBoundNeverExceedsTrueIw) {
  const auto registry = AsRegistry::standard(18);
  int checked = 0;
  for (std::uint32_t offset = 0; offset < 60'000 && checked < 2000; ++offset) {
    const net::IPv4Address ip{net::IPv4Address(10, 0, 0, 0).value() + offset};
    const auto gt = synthesize_host(registry, 7, ip);
    if (!gt.present || !gt.http || gt.http_category != HttpCategory::FewData) {
      continue;
    }
    ++checked;
    EXPECT_GE(gt.true_iw_segments(false, 64), gt.few_bound) << ip.to_string();
    EXPECT_GE(gt.few_bound, 1u);
  }
  EXPECT_GT(checked, 500);
}

TEST(GroundTruth, SuccessPagesExceedIwAtBothMss) {
  const auto registry = AsRegistry::standard(18);
  int checked = 0;
  for (std::uint32_t offset = 0; offset < 60'000 && checked < 2000; ++offset) {
    const net::IPv4Address ip{net::IPv4Address(10, 0, 0, 0).value() + offset};
    const auto gt = synthesize_host(registry, 7, ip);
    if (!gt.present || !gt.http) continue;
    if (gt.http_category != HttpCategory::SuccessDirect) continue;
    ++checked;
    const std::uint16_t eff64 = tcp::effective_mss(gt.os, 64, 1460);
    const std::uint16_t eff128 = tcp::effective_mss(gt.os, 128, 1460);
    const std::size_t worst_iw = std::max(gt.http_iw.initial_cwnd(eff64),
                                          gt.http_iw.initial_cwnd(eff128));
    EXPECT_GT(gt.http_page_bytes, worst_iw) << ip.to_string();
  }
  EXPECT_GT(checked, 300);
}

TEST(GroundTruth, EchoHostsHaveCompatibleProfiles) {
  const auto registry = AsRegistry::standard(18);
  for (std::uint32_t offset = 0; offset < 60'000; ++offset) {
    const net::IPv4Address ip{net::IPv4Address(10, 0, 0, 0).value() + offset};
    const auto gt = synthesize_host(registry, 7, ip);
    if (!gt.present || gt.http_category != HttpCategory::SuccessEcho) continue;
    EXPECT_EQ(gt.os, tcp::OsProfile::Linux);
    ASSERT_EQ(gt.http_iw.policy, tcp::IwPolicy::Segments);
    EXPECT_LE(gt.http_iw.segments, 10u);
  }
}

TEST(GroundTruth, CloudflareIsAllIw10) {
  const auto registry = AsRegistry::standard(18);
  const auto* cloudflare = registry.by_name("Cloudflare");
  ASSERT_NE(cloudflare, nullptr);
  const auto& prefix = cloudflare->prefixes.front();
  for (std::uint64_t i = 0; i < prefix.size(); ++i) {
    const auto gt = synthesize_host(registry, 42, prefix.at(i));
    if (!gt.present) continue;
    if (gt.http && gt.http_category != HttpCategory::FewData) {
      EXPECT_EQ(gt.http_iw.segments, 10u);
    }
    if (gt.tls) {
      EXPECT_EQ(gt.tls_iw.segments, 10u);
    }
  }
}

TEST(GroundTruth, TelmexHasByteLimitedCpe) {
  const auto registry = AsRegistry::standard(18);
  const auto* telmex = registry.by_name("Telmex");
  ASSERT_NE(telmex, nullptr);
  const auto& prefix = telmex->prefixes.front();
  int byte_hosts = 0;
  int http_hosts = 0;
  for (std::uint64_t i = 0; i < prefix.size(); ++i) {
    const auto gt = synthesize_host(registry, 42, prefix.at(i));
    if (!gt.present || !gt.http) continue;
    ++http_hosts;
    if (gt.http_iw.policy == tcp::IwPolicy::Bytes) ++byte_hosts;
  }
  ASSERT_GT(http_hosts, 100);
  EXPECT_NEAR(byte_hosts / double(http_hosts), 0.29, 0.06)
      << "~30% of Telmex HTTP hosts are byte-IW CPE (§4.2 source)";
}

TEST(GroundTruth, AccessRdnsEncodesIpAndIspTag) {
  const auto registry = AsRegistry::standard(18);
  const auto* comcast = registry.by_name("Comcast");
  const auto& prefix = comcast->prefixes.front();
  int with_rdns = 0;
  int encoding = 0;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const auto ip = prefix.at(prefix.size() / 3 + i);
    const auto gt = synthesize_host(registry, 42, ip);
    if (!gt.present || gt.rdns.empty()) continue;
    ++with_rdns;
    char needle[32];
    std::snprintf(needle, sizeof(needle), "%u-%u-%u-%u", ip.octet(0), ip.octet(1),
                  ip.octet(2), ip.octet(3));
    if (gt.rdns.find(needle) != std::string::npos) ++encoding;
    EXPECT_NE(gt.rdns.find("comcastline"), std::string::npos) << gt.rdns;
  }
  ASSERT_GT(with_rdns, 200);
  EXPECT_GT(encoding / double(with_rdns), 0.85);
}

TEST(GroundTruth, PathMtuDistributionAnchors) {
  const auto registry = AsRegistry::standard(18);
  int n = 0;
  int ge1376 = 0;
  int ge1476 = 0;
  for (std::uint32_t offset = 0; offset < 60'000; ++offset) {
    const net::IPv4Address ip{net::IPv4Address(10, 0, 0, 0).value() + offset};
    const auto gt = synthesize_host(registry, 11, ip);
    if (!gt.present) continue;
    ++n;
    ge1376 += gt.path_mtu >= 1376;
    ge1476 += gt.path_mtu >= 1476;
  }
  ASSERT_GT(n, 5000);
  EXPECT_NEAR(ge1376 / double(n), 0.99, 0.01);  // MSS 1336 support
  EXPECT_NEAR(ge1476 / double(n), 0.80, 0.02);  // MSS 1436 support
}

TEST(GroundTruth, DriftIsMonotoneAndTargetsLegacyLinux) {
  const auto registry = AsRegistry::standard(18);
  const DriftParams late{12, 0.06};

  int upgraded = 0;
  int legacy_at_zero = 0;
  for (std::uint32_t offset = 0; offset < 40'000; ++offset) {
    const net::IPv4Address ip{net::IPv4Address(10, 0, 0, 0).value() + offset};
    const auto epoch0 = synthesize_host(registry, 3, ip, DriftParams{0, 0.06});
    if (!epoch0.present || !epoch0.http) continue;

    const auto epoch12 = synthesize_host(registry, 3, ip, late);
    // Non-IW fields are untouched by drift.
    EXPECT_EQ(epoch0.http_category, epoch12.http_category);
    EXPECT_EQ(epoch0.os, epoch12.os);
    EXPECT_EQ(epoch0.chain_bytes, epoch12.chain_bytes);

    const bool legacy = epoch0.os == tcp::OsProfile::Linux &&
                        epoch0.http_iw.policy == tcp::IwPolicy::Segments &&
                        epoch0.http_iw.segments <= 4;
    if (legacy) {
      ++legacy_at_zero;
      if (epoch12.http_iw.segments == 10) ++upgraded;
      // Monotone: once upgraded at an epoch, upgraded at all later epochs.
      const auto epoch6 = synthesize_host(registry, 3, ip, DriftParams{6, 0.06});
      if (epoch6.http_iw.segments == 10) {
        EXPECT_EQ(epoch12.http_iw.segments, 10u) << ip.to_string();
      }
    } else {
      // Windows / byte-IW / already-modern hosts never change.
      EXPECT_EQ(epoch12.http_iw.segments, epoch0.http_iw.segments);
      EXPECT_EQ(epoch12.http_iw.policy, epoch0.http_iw.policy);
    }
  }
  ASSERT_GT(legacy_at_zero, 1000);
  // After 12 epochs at 6%: 1-(0.94^12) ≈ 52% of legacy hosts upgraded.
  EXPECT_NEAR(upgraded / double(legacy_at_zero), 0.52, 0.05);
}

// ------------------------------------------------------ InternetModel ----

TEST(InternetModel, LazyMaterializationAndEviction) {
  sim::EventLoop loop;
  sim::Network network(loop, 1);
  ModelConfig config;
  config.scale_log2 = 16;
  config.sweep_interval = sim::sec(1);
  InternetModel internet(network, config);
  internet.install();

  EXPECT_EQ(internet.live_hosts(), 0u);

  // Find a present host and poke it with a SYN.
  net::IPv4Address target{0};
  for (std::uint32_t offset = 0; offset < 1000; ++offset) {
    const net::IPv4Address candidate{net::IPv4Address(10, 0, 0, 0).value() + offset};
    const auto gt = internet.truth(candidate);
    if (gt.present && gt.http) {
      target = candidate;
      break;
    }
  }
  ASSERT_NE(target.value(), 0u);

  net::TcpSegment syn;
  syn.ip.src = net::IPv4Address{192, 0, 2, 1};
  syn.ip.dst = target;
  syn.tcp.src_port = 40000;
  syn.tcp.dst_port = 80;
  syn.tcp.seq = 1;
  syn.tcp.flags = net::kSyn;
  syn.tcp.window = 65535;
  syn.tcp.options.push_back(net::MssOption{64});
  network.send(net::encode(syn));
  loop.run_until(sim::msec(500));
  EXPECT_EQ(internet.live_hosts(), 1u);
  EXPECT_EQ(internet.hosts_instantiated(), 1u);

  // After the connection idles out, the sweeper evicts the host.
  loop.run_until(sim::sec(60));
  EXPECT_EQ(internet.live_hosts(), 0u);
}

TEST(InternetModel, DarkAddressesStayDark) {
  sim::EventLoop loop;
  sim::Network network(loop, 1);
  ModelConfig config;
  config.scale_log2 = 16;
  InternetModel internet(network, config);
  internet.install();

  // An address outside every AS prefix.
  net::TcpSegment syn;
  syn.ip.src = net::IPv4Address{192, 0, 2, 1};
  syn.ip.dst = net::IPv4Address{172, 31, 0, 1};
  syn.tcp.src_port = 40000;
  syn.tcp.dst_port = 80;
  syn.tcp.flags = net::kSyn;
  network.send(net::encode(syn));
  loop.run_until(sim::sec(1));
  EXPECT_EQ(internet.live_hosts(), 0u);
  EXPECT_GE(network.stats().packets_unroutable, 1u);
}

}  // namespace
}  // namespace iwscan::model
