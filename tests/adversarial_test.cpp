// The adversarial-internet battery: every hostile-host profile from
// inetmodel/adversarial.hpp is scanned by the full engine and must
// (a) terminate within its budget on virtual time,
// (b) classify to the expected HostOutcome + ProbeAnomaly,
// (c) leak no engine sessions, and
// (d) behave deterministically — same scenario, same record.
// Plus the graceful-degradation paths: each SessionBudget limit kills a
// pathological session, emits a best-effort BudgetExceeded record, and
// still leaves the engine clean.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "analysis/scan_runner.hpp"
#include "inetmodel/internet.hpp"
#include "testbed.hpp"

namespace iwscan {
namespace {

using model::AdversarialBehavior;
using test::Scenario;
using test::ScenarioResult;

// ------------------------------------------------------------- battery ----

const Scenario kBattery[] = {
    {.name = "tarpit",
     .behavior = AdversarialBehavior::Tarpit,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::Tarpit},
    {.name = "zero-window",
     .behavior = AdversarialBehavior::ZeroWindow,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::ZeroWindow},
    {.name = "mss-violator",
     .behavior = AdversarialBehavior::MssViolator,
     .expect_outcome = core::HostOutcome::Success,
     .expect_anomaly = core::ProbeAnomaly::MssViolation},
    {.name = "no-retransmit",
     .behavior = AdversarialBehavior::NoRetransmit,
     .expect_outcome = core::HostOutcome::Error,
     .expect_anomaly = core::ProbeAnomaly::NoRetransmit},
    {.name = "rst-injector",
     .behavior = AdversarialBehavior::RstInjector,
     .expect_outcome = core::HostOutcome::Error,
     .expect_anomaly = core::ProbeAnomaly::MidStreamRst},
    {.name = "redirect-loop",
     .behavior = AdversarialBehavior::RedirectLoop,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::RedirectLoop,
     .max_redirect_hops = 4,
     .max_connections = 6},
    {.name = "slowloris",
     .behavior = AdversarialBehavior::Slowloris,
     .expect_outcome = core::HostOutcome::Error,
     .expect_anomaly = core::ProbeAnomaly::Slowloris},
    {.name = "fin-before-data",
     .behavior = AdversarialBehavior::FinBeforeData,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::EarlyFin},
    {.name = "tls-fatal-alert",
     .behavior = AdversarialBehavior::TlsFatalAlert,
     .protocol = core::ProbeProtocol::Tls,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::TlsFatalAlert},
    {.name = "shrinking-retransmit",
     .behavior = AdversarialBehavior::ShrinkingRetransmit,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::ShrinkingRetransmit},
};

TEST(AdversarialBattery, EveryHostileProfileTerminatesAndClassifies) {
  const std::uint64_t seed = test::env_scan_seed();
  std::set<core::ProbeAnomaly> distinct;

  static_assert(std::size(kBattery) == model::kAdversarialBehaviorCount);
  for (const Scenario& scenario : kBattery) {
    SCOPED_TRACE(std::string(scenario.name));
    const ScenarioResult result = test::run_scenario(scenario, seed);

    // (a) termination: done() on the engine's own schedule, within budget.
    EXPECT_TRUE(result.completed);
    EXPECT_LT(result.elapsed, scenario.deadline);
    EXPECT_EQ(result.stats.targets_started, 1u);
    EXPECT_EQ(result.stats.targets_finished, 1u);

    // (b) classification.
    EXPECT_EQ(result.record.outcome, scenario.expect_outcome)
        << "outcome " << to_string(result.record.outcome);
    EXPECT_EQ(result.record.anomaly, scenario.expect_anomaly)
        << "anomaly " << to_string(result.record.anomaly);

    // (c) zero leaked sessions.
    EXPECT_EQ(result.live_sessions, 0u);

    distinct.insert(result.record.anomaly);
  }
  // Every profile maps to its own anomaly — nothing folds together.
  EXPECT_EQ(distinct.size(), std::size(kBattery));
}

TEST(AdversarialBattery, ScenariosAreDeterministic) {
  for (const Scenario& scenario :
       {kBattery[0], kBattery[2], kBattery[5], kBattery[9]}) {
    SCOPED_TRACE(std::string(scenario.name));
    const ScenarioResult first = test::run_scenario(scenario);
    const ScenarioResult second = test::run_scenario(scenario);
    EXPECT_TRUE(first.record == second.record);
    EXPECT_EQ(first.elapsed, second.elapsed);
    EXPECT_EQ(first.stats.packets_sent, second.stats.packets_sent);
    EXPECT_EQ(first.stats.packets_received, second.stats.packets_received);
  }
}

TEST(AdversarialBattery, MssViolatorStillYieldsAnIwMeasurement) {
  Scenario scenario = kBattery[2];
  const ScenarioResult result = test::run_scenario(scenario);
  // The violator is honestly IW-limited at 4 oversized segments: the
  // estimate survives, flagged rather than discarded.
  EXPECT_EQ(result.record.iw_segments, 4u);
  EXPECT_EQ(result.record.observed_mss, 1000u);
  EXPECT_EQ(result.record.anomaly, core::ProbeAnomaly::MssViolation);
}

// ------------------------------------------------ graceful degradation ----

TEST(SessionBudget, WallTimeKillsTarpitSession) {
  Scenario scenario = kBattery[0];  // tarpit: would otherwise sit for ~2 min
  scenario.budget.wall_time = sim::sec(5);
  const ScenarioResult result = test::run_scenario(scenario);

  EXPECT_TRUE(result.completed);
  EXPECT_LT(result.elapsed, sim::sec(10));
  EXPECT_EQ(result.stats.sessions_killed_wall, 1u);
  EXPECT_EQ(result.stats.targets_finished, 1u);
  EXPECT_EQ(result.live_sessions, 0u);
  // Best-effort record: killed before any connection concluded, so the
  // only evidence is the budget itself.
  EXPECT_EQ(result.record.outcome, core::HostOutcome::Error);
  EXPECT_EQ(result.record.anomaly, core::ProbeAnomaly::BudgetExceeded);
}

TEST(SessionBudget, RxByteCapKillsOversizedSender) {
  Scenario scenario = kBattery[2];  // mss-violator: 1000 B segments
  scenario.budget.rx_bytes = 2048;
  const ScenarioResult result = test::run_scenario(scenario);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stats.sessions_killed_bytes, 1u);
  EXPECT_EQ(result.live_sessions, 0u);
  EXPECT_EQ(result.record.outcome, core::HostOutcome::Error);
  EXPECT_EQ(result.record.anomaly, core::ProbeAnomaly::BudgetExceeded);
}

TEST(SessionBudget, RxPacketCapKillsSlowloris) {
  Scenario scenario = kBattery[6];  // slowloris: one tiny packet at a time
  scenario.budget.rx_packets = 8;
  const ScenarioResult result = test::run_scenario(scenario);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stats.sessions_killed_packets, 1u);
  EXPECT_EQ(result.live_sessions, 0u);
  EXPECT_EQ(result.record.anomaly, core::ProbeAnomaly::BudgetExceeded);
}

TEST(SessionBudget, DisabledLimitsNeverFire) {
  Scenario scenario = kBattery[0];
  scenario.budget.wall_time = sim::SimTime::zero();  // zero = unlimited
  scenario.budget.rx_bytes = 0;
  scenario.budget.rx_packets = 0;
  const ScenarioResult result = test::run_scenario(scenario);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stats.sessions_killed_wall, 0u);
  EXPECT_EQ(result.stats.sessions_killed_bytes, 0u);
  EXPECT_EQ(result.stats.sessions_killed_packets, 0u);
  EXPECT_EQ(result.record.anomaly, core::ProbeAnomaly::Tarpit);
}

// ------------------------------------------------------- mixed worlds ----

TEST(AdversarialWorld, FractionZeroReproducesTheCleanGroundTruth) {
  // The overlay draws from a dedicated RNG stream: with fraction 0 the
  // synthesized truth — and therefore the whole world — is untouched.
  sim::EventLoop loop;
  sim::Network network(loop, 5);
  model::ModelConfig clean;
  clean.scale_log2 = 12;
  model::ModelConfig overlaid = clean;
  overlaid.adversarial_fraction = 0.0;
  model::InternetModel a(network, clean);
  model::InternetModel b(network, overlaid);
  for (std::uint32_t i = 0; i < 512; ++i) {
    const net::IPv4Address ip{10, 0, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i & 0xff)};
    EXPECT_FALSE(a.truth(ip).adversary.has_value());
    EXPECT_FALSE(b.truth(ip).adversary.has_value());
  }
}

TEST(AdversarialWorld, OverlayIsDeterministicPerAddress) {
  sim::EventLoop loop;
  sim::Network network(loop, 5);
  model::ModelConfig config;
  config.scale_log2 = 12;
  config.adversarial_fraction = 0.3;
  model::InternetModel a(network, config);
  model::InternetModel b(network, config);
  int overlaid = 0;
  for (std::uint32_t i = 0; i < 2048; ++i) {
    const net::IPv4Address ip{10, 0, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i & 0xff)};
    const auto ta = a.truth(ip);
    const auto tb = b.truth(ip);
    EXPECT_EQ(ta.adversary, tb.adversary);
    if (ta.adversary) ++overlaid;
  }
  EXPECT_GT(overlaid, 0);
}

TEST(AdversarialWorld, MixedScanTerminatesAndCountsAnomalies) {
  sim::EventLoop loop;
  sim::Network network(loop, 123);
  model::ModelConfig config;
  config.scale_log2 = 12;
  config.adversarial_fraction = 0.12;
  model::InternetModel internet(network, config);
  internet.install();

  analysis::ScanOptions options;
  options.rate_pps = 40'000;
  options.scan_seed = test::env_scan_seed();
  const analysis::ScanOutput output =
      analysis::run_iw_scan(network, internet, options);

  ASSERT_FALSE(output.records.empty());
  std::map<core::ProbeAnomaly, int> counts;
  for (const core::HostScanRecord& record : output.records) {
    if (record.anomaly != core::ProbeAnomaly::None) ++counts[record.anomaly];
  }
  // A 12% hostile fraction must surface a spread of anomaly classes.
  EXPECT_GE(counts.size(), 4u);
  EXPECT_EQ(output.engine.targets_started, output.engine.targets_finished);
}

}  // namespace
}  // namespace iwscan
