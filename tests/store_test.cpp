// The columnar spill store (store/): round-trip fidelity through the
// fixed-width wire codecs, CRC-guarded corruption detection (a damaged
// file is an error, never UB or silent bad data), and the merge-time
// identity checks that keep multi-process operator mistakes (mixed seeds,
// overlapping shards, duplicated inputs) from producing a corrupt merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "scanner/stateless.hpp"
#include "store/spill.hpp"
#include "store/spill_format.hpp"
#include "util/rng.hpp"

namespace iwscan::store {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (fixed name: tests must stay
/// deterministic, and ctest runs each binary in isolation).
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("iwscan_store_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::HostScanRecord random_host_record(util::Rng& rng) {
  core::HostScanRecord record;
  record.ip = net::IPv4Address{static_cast<std::uint32_t>(rng())};
  record.outcome = static_cast<core::HostOutcome>(rng.below(4));
  record.iw_segments = static_cast<std::uint32_t>(rng());
  record.iw_bytes = rng();
  record.observed_mss = static_cast<std::uint16_t>(rng());
  record.lower_bound = static_cast<std::uint32_t>(rng());
  record.iw_segments_b = static_cast<std::uint32_t>(rng());
  record.iw_bytes_b = rng();
  record.observed_mss_b = static_cast<std::uint16_t>(rng());
  record.fin_seen = rng.chance(0.5);
  record.reorder_seen = rng.chance(0.5);
  record.loss_suspected = rng.chance(0.5);
  record.anomaly = static_cast<core::ProbeAnomaly>(rng.below(12));
  record.probes_run = static_cast<std::uint8_t>(rng());
  record.connections_used = static_cast<std::uint8_t>(rng());
  return record;
}

scan::SweepRecord random_sweep_record(util::Rng& rng, std::uint64_t cycle) {
  scan::SweepRecord record;
  record.cycle = cycle;
  record.ip = net::IPv4Address{static_cast<std::uint32_t>(rng())};
  record.responsive = rng.chance(0.7);
  record.closed = !record.responsive && rng.chance(0.5);
  record.window = static_cast<std::uint16_t>(rng());
  record.mss = static_cast<std::uint16_t>(rng());
  record.banner_length = static_cast<std::uint8_t>(rng.below(scan::kSweepBannerCap + 1));
  for (std::size_t i = 0; i < record.banner_length; ++i) {
    record.banner[i] = static_cast<std::uint8_t>(rng());
  }
  return record;
}

struct TaggedHost {
  std::uint64_t cycle = 0;
  core::HostScanRecord record;
};

/// Writes `count` random host records for the stride shard (mod total) in
/// shuffled order — sessions complete out of cycle order in real scans.
std::vector<TaggedHost> write_host_spill(const fs::path& dir, std::uint64_t seed,
                                         std::uint32_t shard, std::uint32_t total,
                                         std::size_t count, std::size_t segment_bytes,
                                         std::string* path_out = nullptr) {
  util::Rng rng(seed * 1000003 + shard);
  std::vector<TaggedHost> tagged;
  tagged.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tagged.push_back(TaggedHost{i * total + shard, random_host_record(rng)});
  }
  std::vector<TaggedHost> shuffled = tagged;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }
  SpillConfig config;
  config.directory = dir.string();
  config.segment_bytes = segment_bytes;
  config.seed = seed;
  config.shard = shard;
  config.total_shards = total;
  SpillWriter<core::HostScanRecord> writer(config);
  for (const TaggedHost& entry : shuffled) writer.append(entry.cycle, entry.record);
  EXPECT_TRUE(writer.close()) << writer.error();
  EXPECT_EQ(writer.appended(), count);
  if (path_out != nullptr) *path_out = writer.path();
  return tagged;
}

// ------------------------------------------------------- round-trips ----

TEST(SpillStore, HostRecordsRoundTripAcrossManySegments) {
  const fs::path dir = scratch_dir("host_roundtrip");
  std::string path;
  // ~5 records per segment: the 257-record run must span many segments.
  const std::vector<TaggedHost> want =
      write_host_spill(dir, 0x5eed, 0, 1, 257, 5 * kHostRecordBytes, &path);

  SegmentReader<core::HostScanRecord> reader;
  std::string error;
  ASSERT_TRUE(reader.open(path, &error)) << error;
  EXPECT_GT(reader.segments().size(), 10u);
  EXPECT_EQ(reader.record_count(), want.size());
  EXPECT_EQ(reader.seed(), 0x5eedu);

  std::vector<core::HostScanRecord> got;
  std::string merge_error;
  ASSERT_TRUE(read_merged<core::HostScanRecord>({path}, got, &merge_error))
      << merge_error;
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(got[i] == want[i].record) << "record " << i << " diverges";
  }
  fs::remove_all(dir);
}

TEST(SpillStore, SweepRecordsRoundTripIncludingBannerBytes) {
  const fs::path dir = scratch_dir("sweep_roundtrip");
  util::Rng rng(99);
  std::vector<scan::SweepRecord> want;
  for (std::uint64_t cycle = 0; cycle < 100; ++cycle) {
    want.push_back(random_sweep_record(rng, cycle * 3 + 1));
  }
  SpillConfig config;
  config.directory = dir.string();
  config.segment_bytes = 7 * kSweepRecordBytes;
  config.seed = 42;
  SpillWriter<scan::SweepRecord> writer(config);
  for (const scan::SweepRecord& record : want) writer.append(record.cycle, record);
  ASSERT_TRUE(writer.close()) << writer.error();

  std::vector<scan::SweepRecord> got;
  std::string error;
  ASSERT_TRUE(read_merged<scan::SweepRecord>({writer.path()}, got, &error)) << error;
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(got[i] == want[i]) << "sweep record " << i << " diverges";
  }
  fs::remove_all(dir);
}

TEST(SpillStore, EmptyWriterProducesValidEmptyFile) {
  const fs::path dir = scratch_dir("empty");
  SpillConfig config;
  config.directory = dir.string();
  config.seed = 7;
  SpillWriter<core::HostScanRecord> writer(config);
  ASSERT_TRUE(writer.close());
  EXPECT_EQ(writer.segments_flushed(), 0u);

  SegmentReader<core::HostScanRecord> reader;
  std::string error;
  ASSERT_TRUE(reader.open(writer.path(), &error)) << error;
  EXPECT_EQ(reader.record_count(), 0u);
  EXPECT_FALSE(reader.has_identity());

  std::vector<core::HostScanRecord> got;
  ASSERT_TRUE(read_merged<core::HostScanRecord>({writer.path()}, got, &error)) << error;
  EXPECT_TRUE(got.empty());
  fs::remove_all(dir);
}

// ------------------------------------------- corruption is an error ----

TEST(SpillStore, TruncatedTailIsDetectedNotMisread) {
  const fs::path dir = scratch_dir("truncated");
  std::string path;
  write_host_spill(dir, 1, 0, 1, 64, 8 * kHostRecordBytes, &path);
  // Cut the file mid-payload of the final segment.
  fs::resize_file(path, fs::file_size(path) - kHostRecordBytes / 2);

  SegmentReader<core::HostScanRecord> reader;
  std::string error;
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  fs::remove_all(dir);
}

TEST(SpillStore, FlippedPayloadByteFailsTheSegmentCrc) {
  const fs::path dir = scratch_dir("payload_flip");
  std::string path;
  write_host_spill(dir, 2, 0, 1, 32, 1u << 20, &path);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(kSegmentHeaderBytes + 10));
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(kSegmentHeaderBytes + 10));
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(kSegmentHeaderBytes + 10));
    file.write(&byte, 1);
  }
  SegmentReader<core::HostScanRecord> reader;
  std::string error;
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
  fs::remove_all(dir);
}

TEST(SpillStore, FlippedHeaderByteFailsTheHeaderCrc) {
  const fs::path dir = scratch_dir("header_flip");
  std::string path;
  write_host_spill(dir, 3, 0, 1, 32, 1u << 20, &path);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    file.seekg(8);  // the seed field, guarded by the header CRC
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(8);
    file.write(&byte, 1);
  }
  SegmentReader<core::HostScanRecord> reader;
  std::string error;
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_FALSE(error.empty());
  fs::remove_all(dir);
}

// ---------------------------------------------- multi-shard merging ----

TEST(SpillStore, MergeAcrossShardsReconstructsGlobalCycleOrder) {
  const fs::path dir = scratch_dir("merge");
  std::string path0;
  std::string path1;
  const auto want0 = write_host_spill(dir, 7, 0, 2, 40, 6 * kHostRecordBytes, &path0);
  const auto want1 = write_host_spill(dir, 7, 1, 2, 40, 6 * kHostRecordBytes, &path1);

  std::vector<TaggedHost> want = want0;
  want.insert(want.end(), want1.begin(), want1.end());
  std::sort(want.begin(), want.end(),
            [](const TaggedHost& a, const TaggedHost& b) { return a.cycle < b.cycle; });

  std::string error;
  auto merge = open_merge<core::HostScanRecord>({path0, path1}, &error);
  ASSERT_TRUE(merge.has_value()) << error;
  EXPECT_EQ(merge->record_count(), want.size());
  EXPECT_EQ(merge->seed(), 7u);

  std::uint64_t cycle = 0;
  core::HostScanRecord record;
  std::size_t index = 0;
  while (merge->next(cycle, record)) {
    ASSERT_LT(index, want.size());
    EXPECT_EQ(cycle, want[index].cycle);
    EXPECT_TRUE(record == want[index].record) << "merged record " << index;
    ++index;
  }
  EXPECT_TRUE(merge->ok()) << merge->error();
  EXPECT_EQ(index, want.size());
  fs::remove_all(dir);
}

TEST(SpillStore, DisjointShardsWithUnequalTotalsMerge) {
  // 0 (mod 2) ∪ 1 (mod 4) ∪ 3 (mod 4) covers every residue exactly once.
  const fs::path dir = scratch_dir("unequal_totals");
  std::string path0;
  std::string path1;
  std::string path3;
  write_host_spill(dir, 5, 0, 2, 16, 1u << 20, &path0);
  write_host_spill(dir, 5, 1, 4, 8, 1u << 20, &path1);
  write_host_spill(dir, 5, 3, 4, 8, 1u << 20, &path3);

  std::vector<core::HostScanRecord> got;
  std::string error;
  ASSERT_TRUE(
      read_merged<core::HostScanRecord>({path0, path1, path3}, got, &error))
      << error;
  EXPECT_EQ(got.size(), 32u);
  fs::remove_all(dir);
}

TEST(SpillStore, MixedSeedInputsAreRejected) {
  const fs::path dir = scratch_dir("mixed_seed");
  std::string path0;
  std::string path1;
  write_host_spill(dir, 7, 0, 2, 8, 1u << 20, &path0);
  write_host_spill(dir, 8, 1, 2, 8, 1u << 20, &path1);

  std::string error;
  auto merge = open_merge<core::HostScanRecord>({path0, path1}, &error);
  EXPECT_FALSE(merge.has_value());
  EXPECT_NE(error.find("mixed scan seeds"), std::string::npos) << error;
  fs::remove_all(dir);
}

TEST(SpillStore, OverlappingShardStridesAreRejected) {
  // 0 (mod 2) and 2 (mod 4) intersect: both own cycles ≡ 2 (mod 4).
  const fs::path dir = scratch_dir("overlap");
  std::string path0;
  std::string path2;
  write_host_spill(dir, 7, 0, 2, 8, 1u << 20, &path0);
  write_host_spill(dir, 7, 2, 4, 8, 1u << 20, &path2);

  std::string error;
  auto merge = open_merge<core::HostScanRecord>({path0, path2}, &error);
  EXPECT_FALSE(merge.has_value());
  EXPECT_NE(error.find("overlapping shards"), std::string::npos) << error;
  fs::remove_all(dir);
}

TEST(SpillStore, DuplicateCycleInDisjointlyLabeledInputsStopsTheStream) {
  // Defense in depth: a file whose *label* says shard 1/2 but whose
  // payload violates the residue sneaks past the stride check; the merge
  // itself still refuses to emit a repeated cycle.
  const fs::path dir = scratch_dir("residue_lie");
  SpillConfig config0;
  config0.directory = dir.string();
  config0.seed = 7;
  config0.shard = 0;
  config0.total_shards = 2;
  SpillWriter<core::HostScanRecord> writer0(config0);
  util::Rng rng(1);
  for (const std::uint64_t cycle : {0u, 2u, 4u}) {
    writer0.append(cycle, random_host_record(rng));
  }
  ASSERT_TRUE(writer0.close());

  SpillConfig config1 = config0;
  config1.shard = 1;
  SpillWriter<core::HostScanRecord> writer1(config1);
  writer1.append(1, random_host_record(rng));
  writer1.append(2, random_host_record(rng));  // lies about its residue
  ASSERT_TRUE(writer1.close());

  std::vector<core::HostScanRecord> got;
  std::string error;
  EXPECT_FALSE(read_merged<core::HostScanRecord>({writer0.path(), writer1.path()},
                                                 got, &error));
  EXPECT_NE(error.find("repeats or regresses"), std::string::npos) << error;
  fs::remove_all(dir);
}

// ----------------------------------------------------------- helpers ----

TEST(SpillStore, ShardsOverlapMatchesTheGcdRule) {
  EXPECT_TRUE(shards_overlap(0, 1, 3, 4));   // 0 mod 1 is everything
  EXPECT_TRUE(shards_overlap(0, 2, 2, 4));   // both own 2 (mod 4)
  EXPECT_TRUE(shards_overlap(1, 2, 3, 4));   // both own 3 (mod 4)
  EXPECT_FALSE(shards_overlap(0, 2, 1, 2));  // complementary halves
  EXPECT_FALSE(shards_overlap(0, 2, 1, 4));
  EXPECT_FALSE(shards_overlap(0, 2, 3, 4));
  EXPECT_FALSE(shards_overlap(1, 2, 0, 4));
  EXPECT_TRUE(shards_overlap(2, 6, 5, 9));   // gcd 3: 2 ≡ 5 (mod 3)
  EXPECT_FALSE(shards_overlap(2, 6, 4, 9));  // gcd 3: 2 ≢ 1 (mod 3)
}

TEST(SpillStore, CollectSpillFilesSeparatesKindsAndExpandsDirectories) {
  const fs::path dir = scratch_dir("collect");
  std::string host_path;
  write_host_spill(dir, 7, 0, 1, 4, 1u << 20, &host_path);
  SpillConfig sweep_config;
  sweep_config.directory = dir.string();
  sweep_config.seed = 7;
  SpillWriter<scan::SweepRecord> sweep_writer(sweep_config);
  util::Rng rng(3);
  sweep_writer.append(1, random_sweep_record(rng, 1));
  ASSERT_TRUE(sweep_writer.close());

  std::vector<std::string> hosts;
  std::vector<std::string> sweeps;
  std::string error;
  ASSERT_TRUE(collect_spill_files({dir.string()}, RecordKind::Host, hosts, &error))
      << error;
  ASSERT_TRUE(collect_spill_files({dir.string()}, RecordKind::Sweep, sweeps, &error))
      << error;
  ASSERT_EQ(hosts.size(), 1u);
  ASSERT_EQ(sweeps.size(), 1u);
  EXPECT_EQ(hosts.front(), host_path);
  EXPECT_EQ(sweeps.front(), sweep_writer.path());

  std::vector<std::string> missing;
  EXPECT_FALSE(collect_spill_files({(dir / "nope").string()}, RecordKind::Host,
                                   missing, &error));
  EXPECT_FALSE(error.empty());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace iwscan::store
