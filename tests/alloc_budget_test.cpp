// Steady-state allocation budget for the scan datapath. The pooled-buffer
// fabric and slab event loop are supposed to keep a running scan off the
// allocator: once pools are warm, per-packet work reuses PacketBuf blocks
// and slab slots instead of hitting operator new. This test pins that
// property with a budget so a regression (an accidental per-packet copy, a
// std::function rebind, a container churn) fails loudly instead of only
// showing up as a bench_micro slowdown.
//
// This is the test binary's single allocation-counting TU (see
// util/alloc_stats.hpp): the macro swaps in counting operator new/delete
// for the whole process.
#define IWSCAN_COUNT_ALLOCATIONS
#include "util/alloc_stats.hpp"

#include <gtest/gtest.h>

#include "analysis/scan_runner.hpp"
#include "inetmodel/internet.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/network.hpp"

namespace iwscan {
namespace {

struct FreshWorld {
  sim::EventLoop loop;
  sim::Network network{loop, 123};
  model::InternetModel internet;

  FreshWorld() : internet(network, make_config()) { internet.install(); }

  static model::ModelConfig make_config() {
    model::ModelConfig config;
    config.scale_log2 = 12;  // 4 Ki addresses, ~3.3k scan targets
    return config;
  }
};

analysis::ScanOutput run_scan(FreshWorld& world) {
  analysis::ScanOptions options;
  options.protocol = core::ProbeProtocol::Http;
  options.rate_pps = 40'000;
  options.scan_seed = 7;
  options.shards = 1;  // one loop; no ThreadPool noise in the counter
  return analysis::run_iw_scan(world.network, world.internet, options);
}

TEST(AllocBudget, ScanStaysWithinPerPacketAllocationBudget) {
  // First scan warms process-wide caches (estimator tables, certificate
  // material, the model's lazily-built state) so the measured scan starts
  // from the steady state a long-running sharded scan would see.
  {
    FreshWorld warmup;
    (void)run_scan(warmup);
  }

  FreshWorld world;
  const std::uint64_t before = util::alloc_stats::allocations();
  const analysis::ScanOutput output = run_scan(world);
  const std::uint64_t allocations =
      util::alloc_stats::allocations() - before;

  const std::uint64_t packets =
      output.engine.packets_sent + output.engine.packets_received;
  ASSERT_GT(packets, 10'000u);  // the scan actually ran
  ASSERT_FALSE(output.records.empty());

  const double per_packet = static_cast<double>(allocations) /
                            static_cast<double>(packets);

  // Budget: measured ~7.0 allocations per delivered packet on the pooled
  // datapath (RelWithDebInfo, 2026-08), pinned with ~50% headroom. The
  // count includes everything the scan run touches (world build,
  // per-connection estimator state, records vector growth), so it is a
  // whole-scan amortised figure, not a pure fabric-hop figure — the
  // fabric hop itself is measured allocation-free by
  // BM_NetworkPacketDelivery in bench_micro.
  EXPECT_LT(per_packet, 10.5)
      << "allocations=" << allocations << " packets=" << packets
      << " per_packet=" << per_packet;
}

}  // namespace
}  // namespace iwscan
