// Steady-state allocation budget for the scan datapath. The pooled-buffer
// fabric and slab event loop are supposed to keep a running scan off the
// allocator: once pools are warm, per-packet work reuses PacketBuf blocks
// and slab slots instead of hitting operator new. This test pins that
// property with a budget so a regression (an accidental per-packet copy, a
// std::function rebind, a container churn) fails loudly instead of only
// showing up as a bench_micro slowdown.
//
// This is the test binary's single allocation-counting TU (see
// util/alloc_stats.hpp): the macro swaps in counting operator new/delete
// for the whole process.
#define IWSCAN_COUNT_ALLOCATIONS
#include "util/alloc_stats.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/scan_runner.hpp"
#include "inetmodel/internet.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/network.hpp"
#include "store/spill.hpp"

namespace iwscan {
namespace {

struct FreshWorld {
  sim::EventLoop loop;
  sim::Network network{loop, 123};
  model::InternetModel internet;

  FreshWorld() : internet(network, make_config()) { internet.install(); }

  static model::ModelConfig make_config() {
    model::ModelConfig config;
    config.scale_log2 = 12;  // 4 Ki addresses, ~3.3k scan targets
    return config;
  }
};

analysis::ScanOutput run_scan(FreshWorld& world) {
  analysis::ScanOptions options;
  options.protocol = core::ProbeProtocol::Http;
  options.rate_pps = 40'000;
  options.scan_seed = 7;
  options.shards = 1;  // one loop; no ThreadPool noise in the counter
  return analysis::run_iw_scan(world.network, world.internet, options);
}

TEST(AllocBudget, ScanStaysWithinPerPacketAllocationBudget) {
  // First scan warms process-wide caches (estimator tables, certificate
  // material, the model's lazily-built state) so the measured scan starts
  // from the steady state a long-running sharded scan would see.
  {
    FreshWorld warmup;
    (void)run_scan(warmup);
  }

  FreshWorld world;
  const std::uint64_t before = util::alloc_stats::allocations();
  const analysis::ScanOutput output = run_scan(world);
  const std::uint64_t allocations =
      util::alloc_stats::allocations() - before;

  const std::uint64_t packets =
      output.engine.packets_sent + output.engine.packets_received;
  ASSERT_GT(packets, 10'000u);  // the scan actually ran
  ASSERT_FALSE(output.records.empty());

  const double per_packet = static_cast<double>(allocations) /
                            static_cast<double>(packets);

  // Budget: measured ~7.0 allocations per delivered packet on the pooled
  // datapath (RelWithDebInfo, 2026-08), pinned with ~50% headroom. The
  // count includes everything the scan run touches (world build,
  // per-connection estimator state, records vector growth), so it is a
  // whole-scan amortised figure, not a pure fabric-hop figure — the
  // fabric hop itself is measured allocation-free by
  // BM_NetworkPacketDelivery in bench_micro.
  EXPECT_LT(per_packet, 10.5)
      << "allocations=" << allocations << " packets=" << packets
      << " per_packet=" << per_packet;
}

TEST(AllocBudget, SpillWriterSteadyStateAppendsAreAllocationFree) {
  // SpillWriter::append is an IWSCAN_HOT root: after construction sizes
  // the segment buffer and the first flush sizes the encode scratch, a
  // sustained append stream must never touch operator new — the flush
  // boundary reuses both buffers' capacity. Budget 0 per record; only the
  // per-segment header/payload vectors may have grown once at the start.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "iwscan_alloc_spill";
  fs::remove_all(dir);
  {
    store::SpillConfig config;
    config.directory = dir.string();
    config.segment_bytes = 1u << 12;  // ~83 records/segment: many flushes
    config.seed = 7;
    store::SpillWriter<core::HostScanRecord> writer(config);

    core::HostScanRecord record;
    record.ip = net::IPv4Address{0x0a000001};
    record.outcome = core::HostOutcome::Success;
    record.iw_segments = 10;
    record.iw_bytes = 14'600;
    record.observed_mss = 1460;

    // Warm the scratch buffers across the first few segments.
    for (std::uint64_t cycle = 0; cycle < 512; ++cycle) {
      writer.append(cycle, record);
    }

    const std::uint64_t before = util::alloc_stats::allocations();
    const std::uint64_t appends = 1u << 16;
    for (std::uint64_t cycle = 512; cycle < 512 + appends; ++cycle) {
      writer.append(cycle, record);
    }
    const std::uint64_t allocations = util::alloc_stats::allocations() - before;

    EXPECT_EQ(allocations, 0u)
        << allocations << " allocations across " << appends
        << " steady-state appends (" << writer.segments_flushed()
        << " segments flushed)";
    ASSERT_TRUE(writer.close()) << writer.error();
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace iwscan
