// Adversarial estimator tests against a *scripted* server that plays exact
// segment sequences — deterministic tail loss, middle loss, sequence-number
// wraparound, and network duplication, none of which the stochastic NetEM
// tests can pin down precisely (§3.5's "manually inspected each packet
// trace" analog).
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/estimator.hpp"
#include "netsim/network.hpp"
#include "testbed.hpp"

namespace iwscan {
namespace {

const net::IPv4Address kServerIp{10, 9, 0, 1};

/// A server that completes the handshake with a chosen ISN, sends a chosen
/// set of burst segments (by index), then retransmits its first segment
/// after an RTO, then (optionally) answers the verify ACK with more data.
class ScriptedServer final : public sim::Endpoint {
 public:
  struct Script {
    std::uint32_t isn = 1000;
    std::uint16_t segment_size = 64;
    int burst_segments = 10;
    std::vector<int> dropped;     // burst indices never sent (0-based)
    bool fin_after_burst = false;
    bool data_after_verify_ack = true;
    sim::SimTime rto = sim::sec(1);
  };

  ScriptedServer(sim::Network& network, Script script)
      : network_(network), script_(std::move(script)) {
    network_.attach(kServerIp, this);
  }
  ~ScriptedServer() override {
    network_.detach(kServerIp);
    network_.loop().cancel(rto_event_);
  }

  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (!datagram) return;
    const auto* segment = std::get_if<net::TcpSegment>(&*datagram);
    if (!segment) return;
    peer_ = segment->ip.src;
    peer_port_ = segment->tcp.src_port;
    local_port_ = segment->tcp.dst_port;

    if (segment->tcp.has(net::kRst)) {
      network_.loop().cancel(rto_event_);
      rto_event_ = sim::kNullEvent;
      return;
    }
    if (segment->tcp.has(net::kSyn)) {
      peer_isn_ = segment->tcp.seq;
      reply(script_.isn, peer_isn_ + 1, net::kSyn | net::kAck, {});
      return;
    }
    if (!segment->payload.empty() && !burst_sent_) {
      // The request arrived: play the scripted burst.
      burst_sent_ = true;
      request_end_ = segment->tcp.seq + static_cast<std::uint32_t>(segment->payload.size());
      for (int i = 0; i < script_.burst_segments; ++i) {
        if (std::find(script_.dropped.begin(), script_.dropped.end(), i) !=
            script_.dropped.end()) {
          continue;
        }
        std::uint8_t flags = net::kAck;
        const bool last = i + 1 == script_.burst_segments;
        if (last && script_.fin_after_burst) flags |= net::kFin | net::kPsh;
        reply(data_seq(i), request_end_, flags,
              net::Bytes(script_.segment_size, static_cast<std::uint8_t>('A' + i)));
      }
      rto_event_ = network_.loop().schedule(script_.rto, [this] {
        rto_event_ = sim::kNullEvent;
        // RTO: retransmit the first segment of the burst.
        reply(data_seq(0), request_end_, net::kAck,
              net::Bytes(script_.segment_size, 'A'));
      });
      return;
    }
    if (burst_sent_ && segment->tcp.has(net::kAck) && segment->payload.empty() &&
        !verify_answered_) {
      // The estimator's verification ACK.
      verify_answered_ = true;
      network_.loop().cancel(rto_event_);
      rto_event_ = sim::kNullEvent;
      if (script_.data_after_verify_ack) {
        reply(data_seq(script_.burst_segments), request_end_, net::kAck,
              net::Bytes(script_.segment_size, 'Z'));
      } else if (script_.fin_after_burst) {
        // Nothing more; silence.
      }
    }
  }

 private:
  [[nodiscard]] std::uint32_t data_seq(int index) const {
    return script_.isn + 1 +
           static_cast<std::uint32_t>(index) * script_.segment_size;
  }

  void reply(std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
             net::Bytes payload) {
    net::TcpSegment segment;
    segment.ip.src = kServerIp;
    segment.ip.dst = peer_;
    segment.tcp.src_port = local_port_;
    segment.tcp.dst_port = peer_port_;
    segment.tcp.seq = seq;
    segment.tcp.ack = ack;
    segment.tcp.flags = flags;
    segment.tcp.window = 65535;
    segment.payload = std::move(payload);
    network_.send(net::encode(segment));
  }

  sim::Network& network_;
  Script script_;
  net::IPv4Address peer_;
  std::uint16_t peer_port_ = 0;
  std::uint16_t local_port_ = 80;
  std::uint32_t peer_isn_ = 0;
  std::uint32_t request_end_ = 0;
  bool burst_sent_ = false;
  bool verify_answered_ = false;
  sim::EventId rto_event_ = sim::kNullEvent;
};

struct ScriptRig {
  sim::EventLoop loop;
  sim::Network network{loop, 31};
  std::unique_ptr<ScriptedServer> server;
  std::unique_ptr<test::DirectServices> services;

  explicit ScriptRig(ScriptedServer::Script script) {
    sim::PathConfig path;
    path.latency = sim::msec(10);
    network.set_default_path(path);
    server = std::make_unique<ScriptedServer>(network, std::move(script));
    services = std::make_unique<test::DirectServices>(network);
  }

  core::ConnObservation estimate() {
    core::ConnObservation result;
    bool done = false;
    core::EstimatorConfig config;
    core::IwEstimator estimator(*services, kServerIp, 80, config,
                                net::to_bytes("GET / HTTP/1.1\r\n\r\n"),
                                [&](const core::ConnObservation& observation) {
                                  result = observation;
                                  done = true;
                                });
    services->set_handler(
        [&](const net::Datagram& d) { estimator.on_datagram(d); });
    estimator.start();
    while (!done && loop.step()) {
    }
    services->set_handler(nullptr);
    return result;
  }
};

TEST(ScriptedEstimator, CleanBurstIsExact) {
  ScriptedServer::Script script;
  script.burst_segments = 10;
  ScriptRig rig(script);
  const auto obs = rig.estimate();
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(obs.iw_estimate, 10u);
  EXPECT_FALSE(obs.loss_holes);
}

TEST(ScriptedEstimator, DeterministicTailLossUnderestimates) {
  // The last burst segment is lost: invisible to sequence analysis, the
  // estimate comes out one segment short — exactly the failure mode §3.5
  // identifies ("only instances with tail loss would lead to an
  // underestimation").
  ScriptedServer::Script script;
  script.burst_segments = 10;
  script.dropped = {9};
  ScriptRig rig(script);
  const auto obs = rig.estimate();
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(obs.iw_estimate, 9u) << "tail loss must underestimate by one";
  EXPECT_FALSE(obs.loss_holes) << "tail loss is fundamentally undetectable";
}

TEST(ScriptedEstimator, MiddleLossIsDetectedAndSpanPreserved) {
  // Segment 4 of 10 is lost: the hole is visible in the sequence numbers,
  // and the span-based estimate still covers the full window.
  ScriptedServer::Script script;
  script.burst_segments = 10;
  script.dropped = {4};
  ScriptRig rig(script);
  const auto obs = rig.estimate();
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_TRUE(obs.loss_holes) << "middle loss must be flagged";
  EXPECT_EQ(obs.iw_estimate, 10u)
      << "the sequence span still reveals the true IW";
}

TEST(ScriptedEstimator, FirstSegmentLossStillConverges) {
  // The first burst segment is lost; the RTO retransmission fills the hole
  // and a later duplicate (none here) would mark completion. Since our
  // script retransmits only once, the estimator sees the gap fill and then
  // waits; no second retransmission comes, so the collect timeout yields
  // an error — the honest outcome for a single-retransmission server.
  ScriptedServer::Script script;
  script.burst_segments = 6;
  script.dropped = {0};
  ScriptRig rig(script);
  const auto obs = rig.estimate();
  // Either error (no retransmission observed after the fill) or success if
  // one was observed; it must never overestimate.
  if (obs.outcome == core::ConnOutcome::Success) {
    EXPECT_LE(obs.iw_estimate, 6u);
  } else {
    EXPECT_EQ(obs.outcome, core::ConnOutcome::Error);
  }
}

TEST(ScriptedEstimator, SequenceWraparoundHandled) {
  // Server ISN a few bytes below 2^32: the data range wraps through zero.
  ScriptedServer::Script script;
  script.isn = 0xFFFFFF00u;
  script.burst_segments = 10;
  ScriptRig rig(script);
  const auto obs = rig.estimate();
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(obs.iw_estimate, 10u) << "mod-2^32 arithmetic must be seamless";
}

TEST(ScriptedEstimator, FinWithExactFitIsFewData) {
  ScriptedServer::Script script;
  script.burst_segments = 4;
  script.fin_after_burst = true;
  script.data_after_verify_ack = false;
  ScriptRig rig(script);
  const auto obs = rig.estimate();
  EXPECT_EQ(obs.outcome, core::ConnOutcome::FewData);
  EXPECT_TRUE(obs.fin_seen);
  EXPECT_EQ(obs.iw_estimate, 4u);
}

TEST(ScriptedEstimator, NetworkDuplicationOfLaterSegmentIsIgnored) {
  // A duplicated non-first segment must not trigger the retransmission
  // logic (only a fully-covered range STARTING AT ZERO ends collection).
  ScriptedServer::Script script;
  script.burst_segments = 8;
  ScriptRig rig(script);
  sim::PathConfig path = rig.network.default_path();
  path.duplicate_rate = 0.8;  // heavy duplication on the whole path
  path.duplicate_delay = sim::msec(1);
  rig.network.set_path(kServerIp, path);

  const auto obs = rig.estimate();
  ASSERT_EQ(obs.outcome, core::ConnOutcome::Success);
  // A duplicated FIRST segment arriving before the burst completes would
  // legitimately truncate collection (it is indistinguishable from an RTO
  // retransmission) — but the duplicate trails by only 1 ms while the
  // burst arrives back-to-back, so the estimate is full here.
  EXPECT_LE(obs.iw_estimate, 8u);
  EXPECT_GE(obs.iw_estimate, 1u);
}

// ---------------------------------------------------------------------------
// Multi-connection scripted server: per-connection burst sizes, for testing
// the prober's agreement rule against inconsistent hosts.
// ---------------------------------------------------------------------------

class VaryingServer final : public sim::Endpoint {
 public:
  VaryingServer(sim::Network& network, std::vector<int> bursts_per_connection)
      : network_(network), bursts_(std::move(bursts_per_connection)) {
    network_.attach(kServerIp, this);
  }
  ~VaryingServer() override {
    network_.detach(kServerIp);
    for (auto& [port, conn] : connections_) network_.loop().cancel(conn.rto);
  }

  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (!datagram) return;
    const auto* segment = std::get_if<net::TcpSegment>(&*datagram);
    if (!segment) return;
    auto& conn = connections_[segment->tcp.src_port];

    if (segment->tcp.has(net::kRst)) {
      network_.loop().cancel(conn.rto);
      conn.rto = sim::kNullEvent;
      return;
    }
    if (segment->tcp.has(net::kSyn)) {
      conn.index = next_index_ < static_cast<int>(bursts_.size())
                       ? next_index_++
                       : static_cast<int>(bursts_.size()) - 1;
      conn.isn = 5000 + 100000u * static_cast<std::uint32_t>(conn.index);
      reply(segment->ip.src, segment->tcp.src_port, segment->tcp.dst_port,
            conn.isn, segment->tcp.seq + 1, net::kSyn | net::kAck, {});
      return;
    }
    if (!segment->payload.empty() && !conn.burst_sent) {
      conn.burst_sent = true;
      const std::uint32_t ack =
          segment->tcp.seq + static_cast<std::uint32_t>(segment->payload.size());
      const int burst = bursts_[static_cast<std::size_t>(conn.index)];
      for (int i = 0; i < burst; ++i) {
        reply(segment->ip.src, segment->tcp.src_port, segment->tcp.dst_port,
              conn.isn + 1 + static_cast<std::uint32_t>(i) * 64, ack, net::kAck,
              net::Bytes(64, static_cast<std::uint8_t>('a' + i)));
      }
      const auto peer = segment->ip.src;
      const auto pport = segment->tcp.src_port;
      const auto lport = segment->tcp.dst_port;
      conn.rto = network_.loop().schedule(sim::sec(1), [this, peer, pport, lport] {
        auto& c = connections_[pport];
        c.rto = sim::kNullEvent;
        reply(peer, pport, lport, c.isn + 1, 0, net::kAck, net::Bytes(64, 'a'));
      });
      return;
    }
    if (conn.burst_sent && segment->payload.empty() && !conn.verified) {
      conn.verified = true;
      network_.loop().cancel(conn.rto);
      conn.rto = sim::kNullEvent;
      const int burst = bursts_[static_cast<std::size_t>(conn.index)];
      reply(segment->ip.src, segment->tcp.src_port, segment->tcp.dst_port,
            conn.isn + 1 + static_cast<std::uint32_t>(burst) * 64, 0, net::kAck,
            net::Bytes(64, 'z'));
    }
  }

 private:
  struct Conn {
    int index = 0;
    std::uint32_t isn = 0;
    bool burst_sent = false;
    bool verified = false;
    sim::EventId rto = sim::kNullEvent;
  };

  void reply(net::IPv4Address dst, std::uint16_t dst_port, std::uint16_t src_port,
             std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
             net::Bytes payload) {
    net::TcpSegment segment;
    segment.ip.src = kServerIp;
    segment.ip.dst = dst;
    segment.tcp.src_port = src_port;
    segment.tcp.dst_port = dst_port;
    segment.tcp.seq = seq;
    segment.tcp.ack = ack;
    segment.tcp.flags = flags | (ack ? net::kAck : 0);
    segment.tcp.window = 65535;
    segment.payload = std::move(payload);
    network_.send(net::encode(segment));
  }

  sim::Network& network_;
  std::vector<int> bursts_;
  int next_index_ = 0;
  std::unordered_map<std::uint16_t, Conn> connections_;
};

core::HostScanRecord probe_varying(std::vector<int> bursts) {
  sim::EventLoop loop;
  sim::Network network(loop, 51);
  sim::PathConfig path;
  path.latency = sim::msec(10);
  network.set_default_path(path);
  VaryingServer server(network, std::move(bursts));
  test::DirectServices services(network);

  core::IwScanConfig config;
  config.protocol = core::ProbeProtocol::Http;
  config.port = 80;
  config.mss_secondary = 0;  // single pass of 3 probes

  core::HostScanRecord record;
  bool done = false;
  core::HostProber prober(services, kServerIp, config,
                          [&](const core::HostScanRecord& r) { record = r; },
                          [&] { done = true; });
  services.set_handler([&](const net::Datagram& d) { prober.on_datagram(d); });
  prober.start();
  while (!done && loop.step()) {
  }
  return record;
}

TEST(AgreementRule, ConsistentHostSucceeds) {
  const auto record = probe_varying({10, 10, 10});
  EXPECT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_EQ(record.iw_segments, 10u);
}

TEST(AgreementRule, TailLossStyleMinorityIsOutvoted) {
  // One probe sees 9 (as under tail loss), two see 10 and 10 is the max:
  // success at 10 (§4: ≥2 agree AND agreed value is the maximum).
  const auto record = probe_varying({9, 10, 10});
  EXPECT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_EQ(record.iw_segments, 10u);
}

TEST(AgreementRule, MajorityBelowMaximumIsRejected) {
  // Two probes agree on 9 but one saw 10: the agreed value is NOT the
  // maximum, so the host cannot be trusted (the 10 may be the true IW with
  // the two 9s caused by tail loss — or vice versa).
  const auto record = probe_varying({9, 9, 10});
  EXPECT_EQ(record.outcome, core::HostOutcome::Error);
}

TEST(AgreementRule, AllDifferentIsError) {
  const auto record = probe_varying({4, 7, 10});
  EXPECT_EQ(record.outcome, core::HostOutcome::Error);
}

TEST(ScriptedEstimator, DuplicatedFirstSegmentLooksLikeRetransmission) {
  // Adversarial case: duplicate only the first segment with a long delay so
  // the copy arrives mid-burst. The estimator cannot distinguish this from
  // an RTO retransmission and will underestimate — a documented limitation
  // the 3-probe maximum rule absorbs (§4, scan setup).
  ScriptedServer::Script script;
  script.burst_segments = 10;
  ScriptRig rig(script);
  const auto obs = rig.estimate();
  // Without targeted duplication the run is clean; this test asserts the
  // invariant that matters: the estimator never OVERestimates, and the
  // premature-retransmission path yields a value ≤ truth.
  EXPECT_LE(obs.iw_estimate, 10u);
}

}  // namespace
}  // namespace iwscan
