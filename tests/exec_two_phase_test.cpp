// The two-phase executor: stateless sweep feeding the stateful estimator.
// Pins the headline invariants — byte-identical output for any shard count
// (sweep records and IW records alike), phase-2 records identical to a
// stateful-everywhere scan restricted to the responsive set, deterministic
// promotion truncation, and the stateless tier's no-state/no-stall behavior
// against the PR 5 hostile battery.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "analysis/scan_runner.hpp"
#include "exec/two_phase.hpp"
#include "inetmodel/adversarial.hpp"
#include "inetmodel/internet.hpp"
#include "scanner/stateless.hpp"
#include "testbed.hpp"

namespace iwscan::exec {
namespace {

// A fresh small world per run: byte-identity across shard counts is
// guaranteed for identically-seeded worlds (a reused loop would have
// advanced its per-flow impairment streams).
struct FreshWorld {
  sim::EventLoop loop;
  sim::Network network{loop, 123};
  model::InternetModel internet;

  explicit FreshWorld(model::ModelConfig config = make_config())
      : internet(network, config) {
    internet.install();
  }

  static model::ModelConfig make_config() {
    model::ModelConfig config;
    config.scale_log2 = 12;  // 4 Ki addresses — the smallest supported world
    return config;
  }
};

analysis::ScanOptions two_phase_options(std::uint64_t shards,
                                        std::uint64_t max_promoted = 0,
                                        std::uint64_t seed = 7) {
  analysis::ScanOptions options;
  options.protocol = core::ProbeProtocol::Http;
  options.rate_pps = 40'000;
  options.scan_seed = seed;
  options.shards = shards;
  options.two_phase = true;
  options.sweep_rate_pps = 400'000;
  options.max_promoted_hosts = max_promoted;
  return options;
}

analysis::ScanOutput run_two_phase(std::uint64_t shards,
                                   std::uint64_t max_promoted = 0,
                                   std::uint64_t seed = 7) {
  FreshWorld world;
  return analysis::run_iw_scan(world.network, world.internet,
                               two_phase_options(shards, max_promoted, seed));
}

void expect_identical(const analysis::ScanOutput& got,
                      const analysis::ScanOutput& want, std::uint64_t shards) {
  ASSERT_EQ(got.sweep_records.size(), want.sweep_records.size()) << shards;
  for (std::size_t i = 0; i < want.sweep_records.size(); ++i) {
    ASSERT_TRUE(got.sweep_records[i] == want.sweep_records[i])
        << "sweep record " << i << " diverges at shards=" << shards << " (ip "
        << want.sweep_records[i].ip.to_string() << ")";
  }
  ASSERT_EQ(got.records.size(), want.records.size()) << shards;
  for (std::size_t i = 0; i < want.records.size(); ++i) {
    ASSERT_TRUE(got.records[i] == want.records[i])
        << "record " << i << " diverges at shards=" << shards << " (ip "
        << want.records[i].ip.to_string() << ")";
  }
  EXPECT_EQ(got.promoted, want.promoted) << shards;
  EXPECT_EQ(got.truncated, want.truncated) << shards;
}

// ------------------------------------------------ sharded byte-identity ----

TEST(TwoPhaseRunner, ShardedTwoPhaseScanIsByteIdenticalToSingleShard) {
  const analysis::ScanOutput baseline = run_two_phase(1);
  ASSERT_FALSE(baseline.records.empty());
  ASSERT_FALSE(baseline.sweep_records.empty());
  EXPECT_EQ(baseline.promoted, baseline.records.size());
  // The sweep tiers the population: more hosts answered the SYN than got
  // (or produced) a banner, and closed ports show up as their own bucket.
  EXPECT_GT(baseline.sweep.responsive, 0u);
  EXPECT_GT(baseline.sweep.closed, 0u);
  EXPECT_GT(baseline.sweep.banners, 0u);

  for (const std::uint64_t shards : {2u, 4u}) {
    const analysis::ScanOutput sharded = run_two_phase(shards);
    expect_identical(sharded, baseline, shards);
    // Counter invariants survive the shard split.
    EXPECT_EQ(sharded.sweep.responsive, baseline.sweep.responsive);
    EXPECT_EQ(sharded.sweep.closed, baseline.sweep.closed);
    EXPECT_EQ(sharded.sweep.banners, baseline.sweep.banners);
    EXPECT_EQ(sharded.sweep.targets_probed, baseline.sweep.targets_probed);
    EXPECT_EQ(sharded.engine.targets_started, baseline.engine.targets_started);
    EXPECT_EQ(sharded.engine.targets_finished, baseline.engine.targets_finished);
    EXPECT_EQ(sharded.address_space, baseline.address_space);
  }
}

TEST(TwoPhaseRunner, AdversarialHostsKeepTwoPhaseByteIdentity) {
  auto run = [](std::uint64_t shards) {
    model::ModelConfig config;
    config.scale_log2 = 12;
    config.adversarial_fraction = 0.15;
    FreshWorld world(config);
    return analysis::run_iw_scan(world.network, world.internet,
                                 two_phase_options(shards, 0, test::env_scan_seed(7)));
  };
  const analysis::ScanOutput baseline = run(1);
  ASSERT_FALSE(baseline.records.empty());
  bool anomaly_seen = false;
  for (const core::HostScanRecord& record : baseline.records) {
    if (record.anomaly != core::ProbeAnomaly::None) anomaly_seen = true;
  }
  EXPECT_TRUE(anomaly_seen);  // the promoted set actually contains hostiles
  for (const std::uint64_t shards : {2u, 4u}) {
    const analysis::ScanOutput sharded = run(shards);
    expect_identical(sharded, baseline, shards);
  }
}

// ------------------------------------- phase 2 vs. stateful-everywhere ----

TEST(TwoPhaseRunner, PhaseTwoMatchesStatefulScanRestrictedToResponsiveSet) {
  const analysis::ScanOutput two_phase = run_two_phase(1);
  ASSERT_FALSE(two_phase.records.empty());

  FreshWorld world;
  analysis::ScanOptions stateful = two_phase_options(1);
  stateful.two_phase = false;
  const analysis::ScanOutput everywhere =
      analysis::run_iw_scan(world.network, world.internet, stateful);
  ASSERT_GT(everywhere.records.size(), two_phase.records.size());

  std::unordered_set<std::uint32_t> promoted;
  for (const scan::SweepRecord& record : two_phase.sweep_records) {
    if (record.responsive) promoted.insert(record.ip.value());
  }
  std::vector<core::HostScanRecord> expected;
  for (const core::HostScanRecord& record : everywhere.records) {
    if (promoted.contains(record.ip.value())) expected.push_back(record);
  }
  // Running the sweep first must not change a single bit of what the
  // stateful tier measures — the tiers ride disjoint flows.
  ASSERT_EQ(two_phase.records.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(two_phase.records[i] == expected[i])
        << "record " << i << " (ip " << expected[i].ip.to_string() << ")";
  }
}

// ------------------------------------------------- promotion truncation ----

TEST(TwoPhaseRunner, MaxPromotedHostsTruncatesToLowestCycleIndices) {
  const analysis::ScanOutput full = run_two_phase(1);
  ASSERT_GT(full.promoted, 2u);
  EXPECT_EQ(full.truncated, 0u);

  const std::uint64_t cap = full.promoted / 2;
  const analysis::ScanOutput capped = run_two_phase(1, cap);
  EXPECT_EQ(capped.promoted, cap);
  EXPECT_EQ(capped.truncated, full.promoted - cap);
  // The sweep itself is unaffected by the cap.
  ASSERT_EQ(capped.sweep_records.size(), full.sweep_records.size());
  for (std::size_t i = 0; i < full.sweep_records.size(); ++i) {
    ASSERT_TRUE(capped.sweep_records[i] == full.sweep_records[i]) << i;
  }
  // Phase 2 ran against exactly the first `cap` promoted hosts in global
  // permutation-cycle order — a prefix of the uncapped run's records.
  ASSERT_EQ(capped.records.size(), cap);
  for (std::size_t i = 0; i < capped.records.size(); ++i) {
    ASSERT_TRUE(capped.records[i] == full.records[i])
        << "record " << i << " (ip " << full.records[i].ip.to_string() << ")";
  }

  // The truncation is global: any shard count picks the same K hosts.
  for (const std::uint64_t shards : {2u, 4u}) {
    const analysis::ScanOutput sharded = run_two_phase(shards, cap);
    expect_identical(sharded, capped, shards);
  }
}

TEST(TwoPhaseRunner, CapAboveResponsiveCountPromotesEverything) {
  const analysis::ScanOutput full = run_two_phase(1);
  const analysis::ScanOutput capped = run_two_phase(1, full.promoted + 100);
  EXPECT_EQ(capped.promoted, full.promoted);
  EXPECT_EQ(capped.truncated, 0u);
  ASSERT_EQ(capped.records.size(), full.records.size());
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    ASSERT_TRUE(capped.records[i] == full.records[i]) << i;
  }
}

// ------------------------------------------------ hostile battery sweep ----

TEST(StatelessSweepAdversarial, HostileBatteryHoldsNoStateAndAlwaysFinishes) {
  // The PR 5 battery's wire-level pathologies, through the stateless tier:
  // a tarpit that goes silent, a zero-window staller, and an RST injector.
  // The sweep must finish on its own cooldown, classify the host as
  // responsive, and — by construction — hold zero per-host sessions.
  for (const model::AdversarialBehavior behavior :
       {model::AdversarialBehavior::Tarpit, model::AdversarialBehavior::ZeroWindow,
        model::AdversarialBehavior::RstInjector}) {
    sim::EventLoop loop;
    sim::Network network(loop, 1);
    sim::PathConfig path;
    path.latency = sim::msec(10);
    network.set_default_path(path);
    const net::IPv4Address target{10, 66, 0, 1};
    model::AdversarialHost host =
        model::make_adversarial_host(network, target, behavior, 0xfeed);
    network.attach(target, host.endpoint.get());

    scan::SweepConfig config;
    config.seed = test::env_scan_seed(7);
    std::vector<scan::SweepEvent> events;
    scan::StatelessSweep sweep(
        network, config,
        scan::TargetGenerator({net::Cidr{target, 32}}, {}, config.seed, 1.0),
        [&](const scan::SweepEvent& event) { events.push_back(event); });

    const sim::SimTime deadline = sim::sec(900);
    const sim::SimTime start = loop.now();
    sweep.start();
    while (!sweep.done() && loop.now() - start < deadline && loop.step()) {
    }
    EXPECT_TRUE(sweep.done()) << to_string(behavior);  // no stall, ever
    EXPECT_EQ(sweep.live_sessions(), 0u) << to_string(behavior);
    EXPECT_EQ(sweep.stats().responsive, 1u) << to_string(behavior);
    ASSERT_FALSE(events.empty()) << to_string(behavior);
    EXPECT_EQ(events.front().kind, scan::SweepEventKind::Responsive);
    EXPECT_EQ(events.front().source, target);
    network.detach(target);
  }
}

TEST(StatelessSweepAdversarial, TwoPhaseOverHostilePopulationLeaksNoSessions) {
  // End-to-end: a population with a hostile fraction, streamed through both
  // tiers. The run must complete with every stateful session reaped (the
  // engine pins live_sessions()==0 via done(); reaching here proves it).
  model::ModelConfig config;
  config.scale_log2 = 12;
  config.adversarial_fraction = 0.25;
  FreshWorld world(config);
  const analysis::ScanOutput output = analysis::run_iw_scan(
      world.network, world.internet, two_phase_options(1, 0, test::env_scan_seed(7)));
  EXPECT_GT(output.sweep.responsive, 0u);
  EXPECT_EQ(output.promoted, output.records.size());
  // Hostile hosts that answered the SYN were promoted and classified by the
  // stateful tier rather than wedging the sweep.
  bool anomaly_seen = false;
  for (const core::HostScanRecord& record : output.records) {
    if (record.anomaly != core::ProbeAnomaly::None) anomaly_seen = true;
  }
  EXPECT_TRUE(anomaly_seen);
}

}  // namespace
}  // namespace iwscan::exec
