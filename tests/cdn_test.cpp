// The CDN/modern-stack battery: every edge-stack profile the follow-up
// study describes (IW16/32/50 tiers, byte-budget tiers, paced first
// flights, per-vhost windows) is scanned by the full engine and must
// (a) terminate within its budget on virtual time,
// (b) classify to the expected HostOutcome + ProbeAnomaly — in particular,
//     a paced host is NEVER reported as an exact-IW success,
// (c) leak no engine sessions, and
// (d) behave deterministically — same scenario, same record.
// Plus the longitudinal/identity contracts: monotone T0/T1/T2 tier drift,
// cdn_fraction == 0 reproducing pre-overlay worlds, and the IW-by-provider
// drift table coming out byte-identical for any shard count and under the
// spill path.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/provider_table.hpp"
#include "analysis/scan_runner.hpp"
#include "inetmodel/internet.hpp"
#include "store/spill.hpp"
#include "testbed.hpp"

namespace iwscan {
namespace {

// ------------------------------------------------------------- battery ----

/// One CDN-edge scenario: a modeled TcpHost (real HTTP/TLS daemon, not an
/// adversarial endpoint) with a modern IwConfig, probed by the full engine.
struct CdnScenario {
  std::string_view name;
  tcp::IwConfig iw{};
  core::ProbeProtocol protocol = core::ProbeProtocol::Http;
  std::size_t content_bytes = 8192;  // HTTP page / TLS chain bytes
  core::HostOutcome expect_outcome{};
  core::ProbeAnomaly expect_anomaly{};
  std::uint32_t expect_iw = 0;         // Success: exact segments at MSS 64
  std::uint32_t expect_min_lower = 0;  // FewData: lower bound at least this
  bool expect_byte_limited = false;
  sim::SimTime deadline = sim::sec(900);
};

const CdnScenario kCdnBattery[] = {
    {.name = "burst-iw16",
     .iw = tcp::IwConfig::iw16(),
     .expect_outcome = core::HostOutcome::Success,
     .expect_anomaly = core::ProbeAnomaly::None,
     .expect_iw = 16},
    {.name = "burst-iw32",
     .iw = tcp::IwConfig::iw32(),
     .expect_outcome = core::HostOutcome::Success,
     .expect_anomaly = core::ProbeAnomaly::None,
     .expect_iw = 32},
    {.name = "burst-iw50",
     .iw = tcp::IwConfig::iw50(),
     .content_bytes = 16384,
     .expect_outcome = core::HostOutcome::Success,
     .expect_anomaly = core::ProbeAnomaly::None,
     .expect_iw = 50},
    {.name = "byte-tier-16k",
     .iw = tcp::IwConfig::byte_tier_kib(16),
     .content_bytes = 24576,
     .expect_outcome = core::HostOutcome::Success,
     .expect_anomaly = core::ProbeAnomaly::None,
     .expect_iw = 256,  // 16 KiB at MSS 64 (128 at MSS 128: byte-limited)
     .expect_byte_limited = true},
    {.name = "paced-iw16",
     .iw = tcp::IwConfig::iw16().paced_over(600),
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::PacedDelivery,
     .expect_min_lower = 16},
    {.name = "paced-iw50",
     .iw = tcp::IwConfig::iw50().paced_over(1200),
     .content_bytes = 16384,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::PacedDelivery,
     .expect_min_lower = 50},
    {.name = "paced-byte-tier",
     .iw = tcp::IwConfig::byte_tier_kib(16).paced_over(800),
     .content_bytes = 24576,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::PacedDelivery,
     .expect_min_lower = 256},
    {.name = "tls-burst-iw32",
     .iw = tcp::IwConfig::iw32(),
     .protocol = core::ProbeProtocol::Tls,
     .expect_outcome = core::HostOutcome::Success,
     .expect_anomaly = core::ProbeAnomaly::None,
     .expect_iw = 32},
    {.name = "tls-paced-iw16",
     .iw = tcp::IwConfig::iw16().paced_over(600),
     .protocol = core::ProbeProtocol::Tls,
     .expect_outcome = core::HostOutcome::FewData,
     .expect_anomaly = core::ProbeAnomaly::PacedDelivery,
     .expect_min_lower = 16},
};

/// Run one scenario to completion against the full scan engine (mirrors
/// test::run_scenario, with a modeled edge host instead of an adversary).
test::ScenarioResult run_cdn_scenario(const CdnScenario& scenario,
                                      std::uint64_t scan_seed = 7) {
  const net::IPv4Address target{10, 66, 0, 1};

  sim::EventLoop loop;
  sim::Network network(loop, 1);
  sim::PathConfig path;
  path.latency = sim::msec(10);
  network.set_default_path(path);

  tcp::StackConfig stack;
  stack.iw = scenario.iw;
  tcp::TcpHost host(network, target, stack, 0xfeed);
  if (scenario.protocol == core::ProbeProtocol::Http) {
    http::WebConfig web;
    web.page_size = scenario.content_bytes;
    host.listen(80, http::HttpServerApp::factory(std::move(web)));
  } else {
    tls::TlsConfig config;
    config.chain_bytes = scenario.content_bytes;
    host.listen(443, tls::TlsServerApp::factory(std::move(config)));
  }
  network.attach(target, &host);

  core::IwScanConfig probe;
  probe.protocol = scenario.protocol;
  probe.port = scenario.protocol == core::ProbeProtocol::Http ? 80 : 443;

  test::ScenarioResult result;
  core::IwProbeModule module(
      probe, [&](const core::HostScanRecord& r) { result.record = r; });

  scan::EngineConfig config;
  config.scanner_address = test::kScannerIp;
  config.rate_pps = 1000;
  config.max_outstanding = 16;
  config.seed = scan_seed;

  scan::ScanEngine engine(network, config,
                          scan::TargetGenerator({net::Cidr{target, 32}}, {},
                                                scan_seed, 1.0),
                          module);
  const sim::SimTime start = loop.now();
  engine.start();
  while (!engine.done() && loop.now() - start < scenario.deadline && loop.step()) {
  }
  result.completed = engine.done();
  result.elapsed = loop.now() - start;
  result.stats = engine.stats();
  result.live_sessions = engine.live_sessions();
  network.detach(target);
  return result;
}

TEST(CdnBattery, EveryEdgeProfileTerminatesAndClassifies) {
  const std::uint64_t seed = test::env_scan_seed();
  for (const CdnScenario& scenario : kCdnBattery) {
    SCOPED_TRACE(std::string(scenario.name));
    const test::ScenarioResult result = run_cdn_scenario(scenario, seed);

    EXPECT_TRUE(result.completed);
    EXPECT_LT(result.elapsed, scenario.deadline);
    EXPECT_EQ(result.live_sessions, 0u);

    EXPECT_EQ(result.record.outcome, scenario.expect_outcome);
    EXPECT_EQ(result.record.anomaly, scenario.expect_anomaly);
    if (scenario.expect_iw != 0) {
      EXPECT_EQ(result.record.iw_segments, scenario.expect_iw);
    }
    if (scenario.expect_min_lower != 0) {
      EXPECT_GE(result.record.lower_bound, scenario.expect_min_lower);
    }
    EXPECT_EQ(result.record.byte_limited(), scenario.expect_byte_limited);
    // The acceptance criterion, per scenario: a paced first flight must
    // never be folded into an exact-IW success.
    if (scenario.iw.pacing.paced()) {
      EXPECT_NE(result.record.outcome, core::HostOutcome::Success);
    }
  }
}

TEST(CdnBattery, ScenariosAreDeterministic) {
  for (const CdnScenario& scenario :
       {kCdnBattery[0], kCdnBattery[3], kCdnBattery[4], kCdnBattery[8]}) {
    SCOPED_TRACE(std::string(scenario.name));
    const test::ScenarioResult first = run_cdn_scenario(scenario);
    const test::ScenarioResult second = run_cdn_scenario(scenario);
    EXPECT_TRUE(first.record == second.record);
    EXPECT_EQ(first.elapsed, second.elapsed);
    EXPECT_EQ(first.stats.packets_sent, second.stats.packets_sent);
    EXPECT_EQ(first.stats.packets_received, second.stats.packets_received);
  }
}

// ------------------------------------------------- estimator boundaries ----

// The paced/burst decision compares the first→last fresh-data span against
// paced_window_percent (8%) of the first-data→retransmission window (the
// sender's RTO, 1 s — one-way latency shifts both endpoints and cancels).
// With spread_rtt_percent = 400, zero schedule jitter and a 10 ms one-way
// path, the span is exactly 4 × 20 ms = 80 ms = the threshold; shaving
// 125 ns off the latency shaves 4 × 250 ns = 1 µs off the span and the very
// same host flips back to a clean burst.
TEST(PacingBoundary, OneMicrosecondOfSpanFlipsPacedToBurst) {
  const net::IPv4Address target{10, 0, 0, 1};
  tcp::StackConfig stack;
  stack.iw = tcp::IwConfig::iw16().paced_over(400, /*jitter_percent=*/0);
  http::WebConfig web;
  web.page_size = 8192;

  {  // span == threshold (80 ms vs. 8% of 1 s): paced, bounded estimate.
    test::Testbed bed;
    bed.add_http_host(target, stack, web);
    const core::ConnObservation observation =
        bed.estimate(target, 80, {}, test::Testbed::http_get(target));
    EXPECT_EQ(observation.outcome, core::ConnOutcome::FewData);
    EXPECT_EQ(observation.anomaly, core::ProbeAnomaly::PacedDelivery);
    EXPECT_EQ(observation.iw_estimate, 16u);
  }
  {  // span == threshold − 1 µs: a burst, exact success.
    test::Testbed bed;
    sim::PathConfig path;
    path.latency = sim::msec(10) - sim::SimTime(125);
    bed.network().set_default_path(path);
    bed.add_http_host(target, stack, web);
    const core::ConnObservation observation =
        bed.estimate(target, 80, {}, test::Testbed::http_get(target));
    EXPECT_EQ(observation.outcome, core::ConnOutcome::Success);
    EXPECT_EQ(observation.anomaly, core::ProbeAnomaly::None);
    EXPECT_EQ(observation.iw_estimate, 16u);
  }
}

// Per-vhost worlds: the same IP serves IW16 for IP-as-Host probing and
// IW32 when the request names the canonical vhost. The two probes must be
// reported as a split — two exact measurements — never averaged.
TEST(PerVhost, HttpHostHeaderSelectsADifferentWindow) {
  const net::IPv4Address target{10, 0, 0, 2};
  test::Testbed bed;
  tcp::StackConfig stack;
  stack.iw = tcp::IwConfig::iw16();
  http::WebConfig web;
  web.page_size = 16384;
  web.canonical_name = "www.edge-a.example";
  web.vhost_iw = tcp::IwConfig::iw32();
  bed.add_http_host(target, stack, web);

  core::IwScanConfig config;
  const core::HostScanRecord by_ip = bed.probe_host(target, config);
  config.curated_host = "www.edge-a.example";
  const core::HostScanRecord by_name = bed.probe_host(target, config);

  EXPECT_EQ(by_ip.outcome, core::HostOutcome::Success);
  EXPECT_EQ(by_ip.iw_segments, 16u);
  EXPECT_EQ(by_name.outcome, core::HostOutcome::Success);
  EXPECT_EQ(by_name.iw_segments, 32u);
}

TEST(PerVhost, TlsSniSelectsADifferentWindow) {
  const net::IPv4Address target{10, 0, 0, 3};
  test::Testbed bed;
  tcp::StackConfig stack;
  stack.iw = tcp::IwConfig::iw16();
  tls::TlsConfig tls;
  tls.chain_bytes = 9000;
  tls.server_name = "www.edge-b.example";
  tls.sni_iw = tcp::IwConfig::iw32();
  bed.add_tls_host(target, stack, tls);

  core::IwScanConfig config;
  config.protocol = core::ProbeProtocol::Tls;
  config.port = 443;
  const core::HostScanRecord sniless = bed.probe_host(target, config);
  config.curated_host = "www.edge-b.example";
  const core::HostScanRecord by_sni = bed.probe_host(target, config);

  EXPECT_EQ(sniless.outcome, core::HostOutcome::Success);
  EXPECT_EQ(sniless.iw_segments, 16u);
  EXPECT_EQ(by_sni.outcome, core::HostOutcome::Success);
  EXPECT_EQ(by_sni.iw_segments, 32u);
}

// ------------------------------------------------ longitudinal contracts ----

/// CDN-heavy world for the identity tests: small universe, every second
/// web host in a CDN-eligible AS overlaid.
model::ModelConfig cdn_world() {
  model::ModelConfig config;
  config.scale_log2 = 12;
  config.cdn_fraction = 0.6;
  return config;
}

analysis::ScanOptions cdn_scan_options() {
  analysis::ScanOptions options;
  options.rate_pps = 40'000;
  options.scan_seed = test::env_scan_seed();
  return options;
}

analysis::ScanOutput scan_world(const model::ModelConfig& model_config,
                                const analysis::ScanOptions& options) {
  sim::EventLoop loop;
  sim::Network network(loop, 1);
  model::InternetModel internet(network, model_config);
  internet.install();
  return analysis::run_iw_scan(network, internet, options);
}

TEST(CdnLongitudinal, TierDriftIsMonotonePerHost) {
  model::ModelConfig config;
  config.scale_log2 = 12;
  config.cdn_fraction = 1.0;
  config.cdn_tier_upgrade_rate = 0.5;

  sim::EventLoop loop;
  sim::Network network(loop, 1);
  config.epoch = 0;
  model::InternetModel t0(network, config);
  config.epoch = 1;
  model::InternetModel t1(network, config);
  config.epoch = 2;
  model::InternetModel t2(network, config);

  int overlaid = 0;
  int upgraded = 0;
  for (std::uint32_t i = 0; i < (1u << 12); ++i) {
    const net::IPv4Address ip{10, 0, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i & 0xff)};
    const auto g0 = t0.truth(ip);
    const auto g1 = t1.truth(ip);
    const auto g2 = t2.truth(ip);
    ASSERT_LE(g0.cdn_tier, g1.cdn_tier) << ip.to_string();
    ASSERT_LE(g1.cdn_tier, g2.cdn_tier) << ip.to_string();
    if (g0.http) {
      // Tier drift may raise the window, but never flips a host between
      // burst and paced delivery (the pacing draw is epoch-independent).
      ASSERT_EQ(g0.http_iw.pacing, g2.http_iw.pacing) << ip.to_string();
    }
    if (g0.cdn_tier > 0) {
      ++overlaid;
      if (g2.cdn_tier > g0.cdn_tier) ++upgraded;
    }
  }
  EXPECT_GT(overlaid, 0);
  EXPECT_GT(upgraded, 0);  // two epochs at rate 0.5: drift must be visible
}

TEST(CdnOverlay, FractionZeroReproducesPreOverlayWorlds) {
  // Ground truth: with the overlay disabled, the CDN knobs must not perturb
  // a single draw — any tier-upgrade rate yields the identical world.
  model::ModelConfig a;
  a.scale_log2 = 12;
  a.cdn_fraction = 0.0;
  a.cdn_tier_upgrade_rate = 0.08;
  model::ModelConfig b = a;
  b.cdn_tier_upgrade_rate = 0.97;

  sim::EventLoop loop;
  sim::Network network(loop, 1);
  model::InternetModel wa(network, a);
  model::InternetModel wb(network, b);
  for (std::uint32_t i = 0; i < (1u << 12); ++i) {
    const net::IPv4Address ip{10, 0, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i & 0xff)};
    const auto ga = wa.truth(ip);
    const auto gb = wb.truth(ip);
    ASSERT_EQ(ga.cdn_tier, 0u) << ip.to_string();
    ASSERT_FALSE(ga.http_vhost_iw.has_value()) << ip.to_string();
    ASSERT_FALSE(ga.tls_vhost_iw.has_value()) << ip.to_string();
    const auto key = [](const model::GroundTruth& gt) {
      return std::tuple(gt.present, gt.http, gt.tls, gt.http_iw, gt.tls_iw,
                        gt.http_page_bytes, gt.chain_bytes, gt.canonical_name,
                        gt.cdn_tier);
    };
    ASSERT_TRUE(key(ga) == key(gb)) << ip.to_string();
  }

  // Scan level: the records of two epoch-0 fraction-zero scans are
  // byte-identical even when the (unused) CDN parameters differ.
  const analysis::ScanOptions options = cdn_scan_options();
  const auto ra = scan_world(a, options);
  const auto rb = scan_world(b, options);
  ASSERT_FALSE(ra.records.empty());
  EXPECT_TRUE(ra.records == rb.records);
}

TEST(CdnShardIdentity, RecordsAreByteIdenticalAcrossShardCounts) {
  const model::ModelConfig world = cdn_world();
  std::vector<core::HostScanRecord> baseline;
  for (const std::uint64_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(shards);
    analysis::ScanOptions options = cdn_scan_options();
    options.shards = shards;
    const auto output = scan_world(world, options);
    ASSERT_FALSE(output.records.empty());
    if (shards == 1) {
      baseline = output.records;
    } else {
      EXPECT_TRUE(output.records == baseline);
    }
  }

  // Acceptance: no host whose true first flight is paced may be reported
  // as an exact-IW success — and the battery must actually exercise some.
  sim::EventLoop loop;
  sim::Network network(loop, 1);
  model::InternetModel internet(network, world);
  int paced_truth = 0;
  int paced_flagged = 0;
  for (const auto& record : baseline) {
    const auto gt = internet.truth(record.ip);
    if (!gt.http_iw.pacing.paced()) continue;
    ++paced_truth;
    EXPECT_NE(record.outcome, core::HostOutcome::Success)
        << record.ip.to_string();
    if (record.anomaly == core::ProbeAnomaly::PacedDelivery) ++paced_flagged;
  }
  EXPECT_GT(paced_truth, 0);
  EXPECT_GT(paced_flagged, 0);
}

TEST(CdnShardIdentity, TwoPhaseSweepIsByteIdenticalAcrossShardCounts) {
  const model::ModelConfig world = cdn_world();
  analysis::ScanOptions options = cdn_scan_options();
  options.two_phase = true;

  options.shards = 1;
  const auto one = scan_world(world, options);
  options.shards = 4;
  const auto four = scan_world(world, options);
  ASSERT_FALSE(one.records.empty());
  EXPECT_EQ(one.promoted, four.promoted);
  EXPECT_TRUE(one.records == four.records);
}

TEST(CdnShardIdentity, SpillPathReproducesTheInMemoryRecords) {
  const model::ModelConfig world = cdn_world();
  const analysis::ScanOptions options = cdn_scan_options();
  const auto in_memory = scan_world(world, options);
  ASSERT_FALSE(in_memory.records.empty());

  analysis::ScanOptions spilling = options;
  spilling.spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "cdn_spill").string();
  const auto spilled = scan_world(world, spilling);
  ASSERT_TRUE(spilled.records.empty());  // streamed to disk, not RAM
  std::vector<core::HostScanRecord> merged;
  std::string error;
  ASSERT_TRUE(store::read_merged<core::HostScanRecord>(spilled.spill_files,
                                                       merged, &error))
      << error;
  EXPECT_TRUE(merged == in_memory.records);
}

// The PR's pinned deliverable: the IW-by-provider longitudinal table over
// T0/T1/T2 is byte-identical for any shard count and under --spill-dir.
TEST(CdnLongitudinal, ProviderTableIsByteIdenticalAcrossShardsAndSpill) {
  analysis::LongitudinalOptions options;
  options.model = cdn_world();
  options.scan = cdn_scan_options();

  std::string pinned;
  std::vector<analysis::EpochBreakdown> baseline;
  for (const std::uint64_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(shards);
    options.scan.shards = shards;
    std::string error;
    const auto epochs = analysis::longitudinal_breakdown(options, &error);
    ASSERT_EQ(epochs.size(), 3u) << error;
    const std::string table = analysis::render_longitudinal_table(epochs);
    if (shards == 1) {
      pinned = table;
      baseline = epochs;
    } else {
      EXPECT_EQ(table, pinned);
    }
  }

  options.scan.shards = 1;
  options.scan.spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "cdn_longitudinal").string();
  std::string error;
  const auto spill_epochs = analysis::longitudinal_breakdown(options, &error);
  ASSERT_EQ(spill_epochs.size(), 3u) << error;
  EXPECT_EQ(analysis::render_longitudinal_table(spill_epochs), pinned);

  // The table's content contract: every CDN provider shows up at every
  // epoch with measurable large-IW and paced shares. (Per-host tier drift
  // is monotone — pinned on ground truth above — but the *measured* medians
  // may wiggle by a host or two across epochs because each epoch redraws
  // the path loss/jitter streams, so they are not asserted here.)
  int cdn_rows = 0;
  std::uint64_t large_total = 0;
  std::uint64_t paced_total = 0;
  for (const auto& epoch : baseline) {
    for (const auto& row : epoch.rows) {
      if (row.kind != "cdn") continue;
      ++cdn_rows;
      EXPECT_GT(row.success, 0u) << row.name;
      large_total += row.large_iw;
      paced_total += row.paced;
    }
  }
  EXPECT_GE(cdn_rows, 3 * 5);      // all five CDN ASes, at T0, T1 and T2
  EXPECT_GT(large_total, 0u);
  EXPECT_GT(paced_total, 0u);      // the paced share is part of the table
}

}  // namespace
}  // namespace iwscan
