// IW estimator validation — the reproduction of §3.5: with ground truth
// configured on testbed hosts, the estimator must return the exact IW when
// enough data is available, a correct lower bound when not, and must never
// overestimate.
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace iwscan {
namespace {

using test::Testbed;

core::EstimatorConfig estimator_config(std::uint16_t mss = 64) {
  core::EstimatorConfig config;
  config.announced_mss = mss;
  return config;
}

http::WebConfig big_page(std::size_t bytes) {
  http::WebConfig web;
  web.root = http::RootBehavior::Page;
  web.page_size = bytes;
  return web;
}

tcp::StackConfig stack_with_iw(std::uint32_t segments,
                               tcp::OsProfile os = tcp::OsProfile::Linux) {
  tcp::StackConfig stack;
  stack.os = os;
  stack.iw = tcp::IwConfig::segments_of(segments);
  return stack;
}

TEST(Estimator, ExactIwWithEnoughData) {
  // Ground-truth sweep over the RFC-recommended values (§3.5: "the
  // estimator provided the correct IW in all tested cases").
  for (const std::uint32_t iw : {1u, 2u, 3u, 4u, 10u}) {
    Testbed bed;
    const net::IPv4Address host{10, 0, 0, 1};
    bed.add_http_host(host, stack_with_iw(iw), big_page(16'000));

    const auto obs = bed.estimate(host, 80, estimator_config(),
                                  Testbed::http_get(host));
    EXPECT_EQ(obs.outcome, core::ConnOutcome::Success) << "IW " << iw;
    EXPECT_EQ(obs.iw_estimate, iw) << "IW " << iw;
    EXPECT_TRUE(obs.verify_new_data);
    EXPECT_FALSE(obs.fin_seen);
  }
}

TEST(Estimator, LargeAndVendorIwValues) {
  for (const std::uint32_t iw : {16u, 25u, 32u, 48u, 64u}) {
    Testbed bed;
    const net::IPv4Address host{10, 0, 0, 2};
    bed.add_http_host(host, stack_with_iw(iw), big_page(iw * 64 + 4'000));

    const auto obs = bed.estimate(host, 80, estimator_config(),
                                  Testbed::http_get(host));
    EXPECT_EQ(obs.outcome, core::ConnOutcome::Success) << "IW " << iw;
    EXPECT_EQ(obs.iw_estimate, iw) << "IW " << iw;
  }
}

TEST(Estimator, WindowsMssClampIsHandled) {
  // §3.1: Windows falls back to MSS 536 when the announced MSS is lower;
  // the estimator must use the observed segment size, not the announced
  // one, and still recover IW 10.
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 3};
  bed.add_http_host(host, stack_with_iw(10, tcp::OsProfile::Windows),
                    big_page(16'000));

  const auto obs = bed.estimate(host, 80, estimator_config(64),
                                Testbed::http_get(host));
  ASSERT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(obs.max_segment, 536);
  EXPECT_EQ(obs.iw_estimate, 10u);
}

TEST(Estimator, FewDataYieldsLowerBoundAndFin) {
  // Response of ~7 segments worth on an IW-10 host: Connection: close makes
  // the server FIN, proving the IW was not filled (§3.2).
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 4};
  http::WebConfig web;
  web.root = http::RootBehavior::Page;
  web.page_size = 300;  // total response ≈ 420 B → bound 7 at MSS 64
  bed.add_http_host(host, stack_with_iw(10), web);

  const auto obs = bed.estimate(host, 80, estimator_config(),
                                Testbed::http_get(host));
  EXPECT_EQ(obs.outcome, core::ConnOutcome::FewData);
  EXPECT_TRUE(obs.fin_seen);
  EXPECT_GE(obs.iw_estimate, 6u);
  EXPECT_LE(obs.iw_estimate, 8u);
  EXPECT_LE(obs.iw_estimate, 10u) << "lower bound may never exceed the true IW";
}

TEST(Estimator, ExactFitIsClassifiedFewData) {
  // Response exactly equal to the IW: the FIN piggybacks on the last burst
  // segment, so the estimator cannot be sure the IW was filled.
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 5};
  tcp::StackConfig stack = stack_with_iw(4);
  http::WebConfig web;
  web.root = http::RootBehavior::Page;
  // 4 segments × 64 B = 256 B total response.
  const std::size_t overhead =
      model::http_response_overhead("Apache", 200, 256, true);
  web.page_size = 256 - overhead;
  bed.add_http_host(host, stack, web);

  const auto obs = bed.estimate(host, 80, estimator_config(),
                                Testbed::http_get(host));
  EXPECT_EQ(obs.outcome, core::ConnOutcome::FewData);
  EXPECT_TRUE(obs.fin_seen);
  EXPECT_EQ(obs.iw_estimate, 4u);
}

TEST(Estimator, OneByteOverExactFitFlipsToSuccess) {
  // The Success / FewData boundary at exactly IW segments: a response one
  // byte larger than IW×MSS leaves data pending behind the burst, so the
  // verify ACK releases new data and the classification flips to Success
  // with the exact IW — the knife-edge complement of ExactFitIsClassifiedFewData.
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 7};
  tcp::StackConfig stack = stack_with_iw(4);
  http::WebConfig web;
  web.root = http::RootBehavior::Page;
  const std::size_t overhead =
      model::http_response_overhead("Apache", 200, 257, true);
  web.page_size = 257 - overhead;  // total response = 4 × 64 + 1 bytes
  bed.add_http_host(host, stack, web);

  const auto obs = bed.estimate(host, 80, estimator_config(),
                                Testbed::http_get(host));
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_TRUE(obs.verify_new_data);
  EXPECT_EQ(obs.iw_estimate, 4u);
}

TEST(Estimator, MssViolationInflatesBytesPastIwTimesMss) {
  // A host ignoring the announced 64 B MSS and sending 1000 B segments:
  // the burst spans far more bytes than iw_estimate × announced MSS would
  // allow, the oversized segments are flagged, and the segment-counted IW
  // still comes out right.
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 8};
  model::AdversarialHost adv = model::make_adversarial_host(
      bed.network(), host, model::AdversarialBehavior::MssViolator, 1);
  bed.network().attach(host, adv.endpoint.get());

  const auto obs = bed.estimate(host, 80, estimator_config(64),
                                Testbed::http_get(host));
  bed.network().detach(host);

  EXPECT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_TRUE(obs.mss_violation);
  EXPECT_EQ(obs.anomaly, core::ProbeAnomaly::MssViolation);
  EXPECT_EQ(obs.max_segment, 1000u);
  EXPECT_EQ(obs.iw_estimate, 4u);
  // The byte span dwarfs what IW × announced-MSS accounting predicts.
  EXPECT_GT(obs.span_bytes, std::uint64_t{obs.iw_estimate} * 64);
}

TEST(Estimator, NoDataHost) {
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 6};
  http::WebConfig web;
  web.root = http::RootBehavior::Silent;
  bed.add_http_host(host, stack_with_iw(10), web);

  const auto obs = bed.estimate(host, 80, estimator_config(),
                                Testbed::http_get(host));
  EXPECT_EQ(obs.outcome, core::ConnOutcome::NoData);
  EXPECT_EQ(obs.iw_estimate, 0u);
}

TEST(Estimator, UnreachableAndRefused) {
  Testbed bed;
  // 10.0.0.7 has no endpoint at all → SYN times out.
  auto obs = bed.estimate(net::IPv4Address{10, 0, 0, 7}, 80, estimator_config(),
                          Testbed::http_get(net::IPv4Address{10, 0, 0, 7}));
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Unreachable);

  // Host present but port 81 closed → RST → refused.
  const net::IPv4Address host{10, 0, 0, 8};
  bed.add_http_host(host, stack_with_iw(10), big_page(8'000));
  obs = bed.estimate(host, 81, estimator_config(), Testbed::http_get(host));
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Refused);
}

TEST(Estimator, ByteLimitedHostScalesWithMss) {
  // §4.2: a 4 kB byte-IW host sends 64 segments at MSS 64 and 32 at 128.
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 9};
  tcp::StackConfig stack;
  stack.iw = tcp::IwConfig::bytes_of(4096);
  bed.add_http_host(host, stack, big_page(12'000));

  const auto at64 = bed.estimate(host, 80, estimator_config(64),
                                 Testbed::http_get(host));
  ASSERT_EQ(at64.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(at64.iw_estimate, 64u);

  const auto at128 = bed.estimate(host, 80, estimator_config(128),
                                  Testbed::http_get(host));
  ASSERT_EQ(at128.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(at128.iw_estimate, 32u);
  EXPECT_EQ(at64.span_bytes, at128.span_bytes);
}

TEST(Estimator, MtuFillHostScalesWithMss) {
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 10};
  tcp::StackConfig stack;
  stack.iw = tcp::IwConfig::bytes_of(1536);
  bed.add_http_host(host, stack, big_page(8'000));

  const auto at64 = bed.estimate(host, 80, estimator_config(64),
                                 Testbed::http_get(host));
  const auto at128 = bed.estimate(host, 80, estimator_config(128),
                                  Testbed::http_get(host));
  ASSERT_EQ(at64.outcome, core::ConnOutcome::Success);
  ASSERT_EQ(at128.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(at64.iw_estimate, 24u);
  EXPECT_EQ(at128.iw_estimate, 12u);
}

TEST(Estimator, TlsFirstFlightYieldsIw) {
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 11};
  tls::TlsConfig config;
  config.chain_bytes = 4'000;  // plenty for IW 10 at 64 B
  bed.add_tls_host(host, stack_with_iw(10), config);

  core::TlsStrategyConfig strategy_config;
  auto strategy = core::make_tls_strategy(strategy_config);
  const auto obs = bed.estimate(host, 443, estimator_config(), strategy->request());
  ASSERT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(obs.iw_estimate, 10u);
}

TEST(Estimator, TlsAlertWithoutSniIsFewDataBoundOne) {
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 12};
  tls::TlsConfig config;
  config.sni_policy = tls::SniPolicy::AlertAndClose;
  bed.add_tls_host(host, stack_with_iw(10), config);

  auto strategy = core::make_tls_strategy({});
  const auto obs = bed.estimate(host, 443, estimator_config(), strategy->request());
  EXPECT_EQ(obs.outcome, core::ConnOutcome::FewData);
  EXPECT_EQ(obs.iw_estimate, 1u);
  EXPECT_TRUE(obs.fin_seen);
}

TEST(Estimator, TlsSilentCloseIsNoData) {
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 13};
  tls::TlsConfig config;
  config.sni_policy = tls::SniPolicy::SilentClose;
  bed.add_tls_host(host, stack_with_iw(10), config);

  auto strategy = core::make_tls_strategy({});
  const auto obs = bed.estimate(host, 443, estimator_config(), strategy->request());
  EXPECT_EQ(obs.outcome, core::ConnOutcome::NoData);
}

TEST(Estimator, NeverOverestimatesUnderLoss) {
  // §3.5 NetEM experiment: with random loss, estimates are exact or (under
  // tail loss) underestimates — never overestimates.
  for (const double loss : {0.02, 0.05, 0.10}) {
    for (int trial = 0; trial < 12; ++trial) {
      Testbed bed(static_cast<std::uint64_t>(loss * 1000) * 100 +
                  static_cast<std::uint64_t>(trial));
      const net::IPv4Address host{10, 0, 1, static_cast<std::uint8_t>(trial + 1)};
      bed.add_http_host(host, stack_with_iw(10), big_page(16'000));
      sim::PathConfig path = bed.network().default_path();
      path.loss_rate = loss;
      bed.network().set_path(host, path);

      const auto obs = bed.estimate(host, 80, estimator_config(),
                                    Testbed::http_get(host));
      if (obs.outcome == core::ConnOutcome::Success) {
        EXPECT_LE(obs.iw_estimate, 10u)
            << "loss " << loss << " trial " << trial;
        EXPECT_GE(obs.iw_estimate, 1u);
      }
    }
  }
}

TEST(Estimator, ReorderingIsDetectedAndTolerated) {
  Testbed bed(77);
  const net::IPv4Address host{10, 0, 0, 14};
  bed.add_http_host(host, stack_with_iw(10), big_page(16'000));
  sim::PathConfig path = bed.network().default_path();
  path.reorder_rate = 0.4;
  path.reorder_delay = sim::msec(4);
  bed.network().set_path(host, path);

  const auto obs = bed.estimate(host, 80, estimator_config(),
                                Testbed::http_get(host));
  ASSERT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(obs.iw_estimate, 10u) << "reordering must not corrupt the estimate";
}

TEST(Estimator, PrefixHoldsHttpStatusLine) {
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 15};
  http::WebConfig web;
  web.root = http::RootBehavior::RedirectToName;
  web.canonical_name = "www.example.test";
  bed.add_http_host(host, stack_with_iw(10), web);

  const auto obs = bed.estimate(host, 80, estimator_config(),
                                Testbed::http_get(host));
  ASSERT_EQ(obs.outcome, core::ConnOutcome::FewData);
  const std::string text(obs.prefix.begin(), obs.prefix.end());
  EXPECT_NE(text.find("301"), std::string::npos);
  EXPECT_NE(text.find("Location: http://www.example.test/"), std::string::npos);
}

TEST(Estimator, LostRequestIsResentOnDuplicateSynAck) {
  // Deterministic fault injection: the first ACK+request is dropped; the
  // server retransmits its SYN/ACK, which must trigger a request resend —
  // otherwise the probe would time out as a false NoData.
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 16};
  bed.add_http_host(host, stack_with_iw(10), big_page(16'000));

  int requests_seen = 0;
  bed.network().set_filter([&](net::PacketView bytes) {
    const auto datagram = net::decode_datagram(bytes);
    if (!datagram) return true;
    const auto* segment = std::get_if<net::TcpSegment>(&*datagram);
    if (segment && !segment->payload.empty() && segment->tcp.dst_port == 80) {
      // Drop the first copy of the request only.
      return ++requests_seen > 1;
    }
    return true;
  });

  const auto obs = bed.estimate(host, 80, estimator_config(),
                                Testbed::http_get(host));
  bed.network().set_filter(nullptr);
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Success);
  EXPECT_EQ(obs.iw_estimate, 10u);
  EXPECT_EQ(requests_seen, 2) << "exactly one resend after the lost request";
}

TEST(Estimator, LostSynAckMeansUnreachable) {
  // The SYN/ACK never arrives (dropped every time): like ZMap, the probe
  // sends no SYN retries and classifies the host unreachable.
  Testbed bed;
  const net::IPv4Address host{10, 0, 0, 17};
  bed.add_http_host(host, stack_with_iw(10), big_page(16'000));
  bed.network().set_filter([&](net::PacketView bytes) {
    const auto datagram = net::decode_datagram(bytes);
    if (!datagram) return true;
    const auto* segment = std::get_if<net::TcpSegment>(&*datagram);
    return !(segment && segment->tcp.has(net::kSyn) && segment->tcp.has(net::kAck));
  });
  const auto obs = bed.estimate(host, 80, estimator_config(),
                                Testbed::http_get(host));
  bed.network().set_filter(nullptr);
  EXPECT_EQ(obs.outcome, core::ConnOutcome::Unreachable);
}

// --------------------------------------------------------------------------
// Property matrix: for every (true IW, OS profile, announced MSS) the
// estimator must return exactly the true IW in segments when the response
// is large enough — the generalized §3.5 ground-truth sweep.
// --------------------------------------------------------------------------

using MatrixParam = std::tuple<std::uint32_t, tcp::OsProfile, std::uint16_t>;

class EstimatorMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(EstimatorMatrix, ExactForAllCombinations) {
  const auto [iw, os, announced_mss] = GetParam();
  Testbed bed(iw * 131 + announced_mss);
  const net::IPv4Address host{10, 0, 2, 1};

  // Page comfortably larger than the IW at the effective segment size.
  const std::uint16_t eff = tcp::effective_mss(os, announced_mss, 1460);
  bed.add_http_host(host, stack_with_iw(iw, os),
                    big_page(static_cast<std::size_t>(iw) * eff + 4 * eff + 2000));

  const auto obs = bed.estimate(host, 80, estimator_config(announced_mss),
                                Testbed::http_get(host));
  ASSERT_EQ(obs.outcome, core::ConnOutcome::Success)
      << "iw=" << iw << " os=" << static_cast<int>(os) << " mss=" << announced_mss;
  EXPECT_EQ(obs.iw_estimate, iw);
  EXPECT_EQ(obs.max_segment, eff);
}

INSTANTIATE_TEST_SUITE_P(
    GroundTruthSweep, EstimatorMatrix,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 10u, 16u, 25u, 48u),
                       ::testing::Values(tcp::OsProfile::Linux,
                                         tcp::OsProfile::Windows),
                       ::testing::Values(std::uint16_t{64}, std::uint16_t{128},
                                         std::uint16_t{256})),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      // Note: no structured bindings here — commas in brackets break the
      // INSTANTIATE macro's argument splitting.
      return "IW" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == tcp::OsProfile::Linux ? "_Linux_"
                                                               : "_Windows_") +
             "MSS" + std::to_string(std::get<2>(info.param));
    });

// Byte-policy matrix: IW budget in bytes must translate to ceil(bytes/eff)
// segments at every announced MSS.
class BytePolicyMatrix
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint16_t>> {};

TEST_P(BytePolicyMatrix, SegmentsAreCeilOfBudget) {
  const auto [budget, announced_mss] = GetParam();
  Testbed bed(budget + announced_mss);
  const net::IPv4Address host{10, 0, 2, 2};
  tcp::StackConfig stack;
  stack.iw = tcp::IwConfig::bytes_of(budget);
  bed.add_http_host(host, stack, big_page(budget * 3 + 4000));

  const auto obs = bed.estimate(host, 80, estimator_config(announced_mss),
                                Testbed::http_get(host));
  ASSERT_EQ(obs.outcome, core::ConnOutcome::Success);
  const std::uint32_t expected = (budget + announced_mss - 1) / announced_mss;
  EXPECT_EQ(obs.iw_estimate, expected) << "budget=" << budget;
  EXPECT_EQ(obs.span_bytes, budget);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BytePolicyMatrix,
                         ::testing::Combine(::testing::Values(1536u, 4096u, 8192u),
                                            ::testing::Values(std::uint16_t{64},
                                                              std::uint16_t{128})));

}  // namespace
}  // namespace iwscan
