#include <gtest/gtest.h>

#include "netbase/packet.hpp"
#include "netsim/capture.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/network.hpp"

namespace iwscan::sim {
namespace {

// --------------------------------------------------------- EventLoop -----

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(msec(30), [&] { order.push_back(3); });
  loop.schedule(msec(10), [&] { order.push_back(1); });
  loop.schedule(msec(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), msec(30));
}

TEST(EventLoop, TiesBreakByScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(msec(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.schedule(msec(5), [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, CancelIsIdempotentAndNullSafe) {
  EventLoop loop;
  const EventId id = loop.schedule(msec(1), [] {});
  loop.cancel(id);
  loop.cancel(id);
  loop.cancel(kNullEvent);
  loop.run();
}

TEST(EventLoop, EventsScheduledDuringEventsRun) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule(msec(1), recurse);
  };
  loop.schedule(msec(1), recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), msec(5));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(msec(10), [&] { ++fired; });
  loop.schedule(msec(30), [&] { ++fired; });
  loop.run_until(msec(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), msec(20));
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, PastDelaysClampToNow) {
  EventLoop loop;
  loop.schedule(msec(10), [] {});
  loop.run();
  bool fired = false;
  loop.schedule_at(msec(1), [&] { fired = true; });  // in the past
  loop.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), msec(10));
}

TEST(EventLoop, StepReturnsFalseWhenEmpty) {
  EventLoop loop;
  EXPECT_FALSE(loop.step());
  loop.schedule(msec(1), [] {});
  EXPECT_TRUE(loop.step());
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, StaleIdCannotCancelReusedSlot) {
  // Cancelling frees the slab slot for immediate reuse; the old EventId
  // carries the slot's previous generation and must never cancel the new
  // occupant.
  EventLoop loop;
  bool first = false;
  bool second = false;
  const EventId a = loop.schedule(msec(1), [&] { first = true; });
  loop.cancel(a);
  loop.schedule(msec(2), [&] { second = true; });  // recycles a's slot
  loop.cancel(a);                                  // stale id: must be a no-op
  loop.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventLoop, IdKeptPastFiringCannotCancelReusedSlot) {
  EventLoop loop;
  bool second = false;
  const EventId a = loop.schedule(msec(1), [] {});
  loop.run();
  loop.schedule(msec(1), [&] { second = true; });  // may reuse a's slot
  loop.cancel(a);  // fired long ago; generation mismatch makes this a no-op
  loop.run();
  EXPECT_TRUE(second);
}

TEST(EventLoop, CancelThenRescheduleKeepsTieBreakOrder) {
  // Same-instant events fire in schedule order even when cancellations
  // punch holes in the sequence and their slots are re-armed in between.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(msec(5), [&] { order.push_back(0); });
  const EventId cancelled = loop.schedule(msec(5), [&] { order.push_back(99); });
  loop.schedule(msec(5), [&] { order.push_back(1); });
  loop.cancel(cancelled);
  loop.schedule(msec(5), [&] { order.push_back(2); });  // reuses the freed slot
  loop.schedule(msec(1), [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{3, 0, 1, 2}));
}

TEST(EventLoop, PendingEventsExcludesLazilyCancelledEntries) {
  EventLoop loop;
  const EventId a = loop.schedule(msec(1), [] {});
  const EventId b = loop.schedule(msec(2), [] {});
  loop.schedule(msec(3), [] {});
  EXPECT_EQ(loop.pending_events(), 3u);
  loop.cancel(a);
  loop.cancel(b);
  // The wheel still parks the cancelled records (they are dropped lazily at
  // drain time), but neither pending_events() nor empty() may count them.
  EXPECT_EQ(loop.pending_events(), 1u);
  EXPECT_FALSE(loop.empty());
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_TRUE(loop.empty());
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, FullRevolutionWheelDistancesFire) {
  // With the cursor mid-window (tick_ = 1 after firing an event in granule
  // 1), an event at distance 64^(level+1)-1 granules lands in the bucket
  // whose index equals the cursor at that level — one full wheel revolution
  // ahead. The drain must treat that bucket as future, not due now;
  // mistaking it for due cascaded the bucket into itself and silently lost
  // the event (run() returned with pending_events() > 0).
  constexpr std::int64_t kGranuleNs = std::int64_t{1} << 16;
  constexpr std::int64_t kWrapGranules[] = {
      64 * 64,            // level 1
      64 * 64 * 64,       // level 2
      64 * 64 * 64 * 64,  // level 3
  };
  for (const std::int64_t granules : kWrapGranules) {
    EventLoop loop;
    int fired = 0;
    loop.schedule_at(SimTime{kGranuleNs}, [&] { ++fired; });  // tick_ -> 1
    loop.run();
    ASSERT_EQ(fired, 1);
    loop.schedule_at(SimTime{granules * kGranuleNs}, [&] { ++fired; });
    loop.run();
    EXPECT_EQ(fired, 2) << "event " << granules << " granules out never fired";
    EXPECT_EQ(loop.pending_events(), 0u);
    EXPECT_EQ(loop.now(), SimTime{granules * kGranuleNs});
  }
}

TEST(EventLoop, WindowBoundaryCursorBucketCascadesInOrder) {
  // A higher-level cascade can tie on candidate start and move the wheel
  // cursor to exactly a lower-level window boundary. The lower level's
  // cursor bucket then holds genuinely-current records, which must cascade
  // as due now — mistaking them for a full revolution ahead defers them
  // behind later events and eventually wedges the loop.
  constexpr std::int64_t kGranuleNs = std::int64_t{1} << 16;
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime{8000 * kGranuleNs}, [&] { order.push_back(0); });
  ASSERT_TRUE(loop.step());  // cursor -> granule 8000
  // Level 2 (distance 4300), window start = granule 12288.
  loop.schedule_at(SimTime{12300 * kGranuleNs}, [&] { order.push_back(2); });
  // Level 1 (distance 3700); fires next, leaving the cursor mid level-1
  // window at granule 11700.
  loop.schedule_at(SimTime{11700 * kGranuleNs}, [&] { order.push_back(1); });
  ASSERT_TRUE(loop.step());
  // Level 1, bucket 0 — the level-1 window also starting at granule 12288.
  // The level-2 cascade ties on start 12288 and jumps the cursor there
  // first; this record's bucket then reads as the level-1 cursor bucket.
  loop.schedule_at(SimTime{12325 * kGranuleNs}, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime{12325 * kGranuleNs});
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, MidGranulePauseKeepsRecordAccountingExact) {
  // run_until with a deadline inside a granule pauses a bucket drain
  // mid-way. Records consumed before the pause are already subtracted from
  // the physical-record count; if they stay in the bucket, the next drain
  // subtracts them again and the count underflows (wrapping size_t), which
  // degrades every later cancel into a full stale-sweep.
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(SimTime{1000}, [&] { ++fired; });  // all in granule 0
  loop.schedule_at(SimTime{2000}, [&] { ++fired; });
  loop.schedule_at(SimTime{3000}, [&] { ++fired; });
  loop.run_until(SimTime{1500});  // fires the first, pauses mid-bucket
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending_events(), 2u);
  EXPECT_EQ(loop.stored_records(), 2u);  // consumed prefix physically erased
  loop.run_until(SimTime{2500});  // pause again after the second event
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.stored_records(), 1u);
  loop.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.stored_records(), 0u);  // underflow would read huge here
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, FarFutureEventsFireInScheduleOrder) {
  // Beyond the wheel horizon events wait in an overflow list; they must
  // still fire in (when, schedule-order) order once the loop reaches them.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(sec(7200), [&] { order.push_back(1); });
  loop.schedule(sec(7200), [&] { order.push_back(2); });
  loop.schedule(msec(1), [&] { order.push_back(0); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(loop.now(), sec(7200));
}

// ----------------------------------------------------------- Network -----

class Collector final : public Endpoint {
 public:
  void handle_packet(net::PacketView bytes) override {
    packets.emplace_back(bytes.begin(), bytes.end());
  }
  std::vector<net::Bytes> packets;
};

net::Bytes make_packet(net::IPv4Address src, net::IPv4Address dst,
                       std::size_t payload = 0, bool df = false) {
  net::TcpSegment segment;
  segment.ip.src = src;
  segment.ip.dst = dst;
  segment.ip.dont_fragment = df;
  segment.tcp.src_port = 1;
  segment.tcp.dst_port = 2;
  segment.tcp.flags = net::kAck;
  segment.payload.assign(payload, 0x7e);
  return net::encode(segment);
}

const net::IPv4Address kA{10, 0, 0, 1};
const net::IPv4Address kB{10, 0, 0, 2};

TEST(Network, DeliversAfterLatency) {
  EventLoop loop;
  Network network(loop, 1);
  Collector b;
  network.attach(kB, &b);
  PathConfig path;
  path.latency = msec(25);
  network.set_default_path(path);

  network.send(make_packet(kA, kB));
  EXPECT_TRUE(b.packets.empty());
  loop.run();
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(loop.now(), msec(25));
  EXPECT_EQ(network.stats().packets_delivered, 1u);
}

TEST(Network, UnroutableIsCountedNotDelivered) {
  EventLoop loop;
  Network network(loop, 1);
  network.send(make_packet(kA, kB));  // nobody attached, no resolver
  loop.run();
  EXPECT_EQ(network.stats().packets_unroutable, 1u);
  EXPECT_EQ(network.stats().packets_delivered, 0u);
}

TEST(Network, ResolverMaterializesLazily) {
  EventLoop loop;
  Network network(loop, 1);
  Collector host;
  int resolver_calls = 0;
  network.set_resolver([&](net::IPv4Address addr) -> Endpoint* {
    ++resolver_calls;
    if (addr != kB) return nullptr;
    network.attach(kB, &host);
    return &host;
  });

  network.send(make_packet(kA, kB));
  network.send(make_packet(kA, kB));
  loop.run();
  EXPECT_EQ(host.packets.size(), 2u);
  EXPECT_EQ(resolver_calls, 1) << "second packet must hit the attached endpoint";

  // Unresolvable destination: dropped.
  network.send(make_packet(kA, net::IPv4Address{10, 9, 9, 9}));
  loop.run();
  EXPECT_GE(network.stats().packets_unroutable, 1u);
}

TEST(Network, LossRateDropsRoughlyThatFraction) {
  EventLoop loop;
  Network network(loop, 99);
  Collector b;
  network.attach(kB, &b);
  PathConfig path;
  path.loss_rate = 0.3;
  network.set_default_path(path);

  const int n = 5000;
  for (int i = 0; i < n; ++i) network.send(make_packet(kA, kB));
  loop.run();
  const double delivered = static_cast<double>(b.packets.size()) / n;
  EXPECT_NEAR(delivered, 0.7, 0.03);
  EXPECT_EQ(network.stats().packets_lost + network.stats().packets_delivered,
            static_cast<std::uint64_t>(n));
}

TEST(Network, PerPathOverrideBeatsDefault) {
  EventLoop loop;
  Network network(loop, 1);
  Collector b;
  Collector c;
  const net::IPv4Address kC{10, 0, 0, 3};
  network.attach(kB, &b);
  network.attach(kC, &c);
  PathConfig lossy;
  lossy.loss_rate = 1.0;
  network.set_path(kB, lossy);  // kC keeps lossless default

  for (int i = 0; i < 50; ++i) {
    network.send(make_packet(kA, kB));
    network.send(make_packet(kA, kC));
  }
  loop.run();
  EXPECT_TRUE(b.packets.empty());
  EXPECT_EQ(c.packets.size(), 50u);

  network.clear_path(kB);
  network.send(make_packet(kA, kB));
  loop.run();
  EXPECT_EQ(b.packets.size(), 1u);
}

TEST(Network, PathKeyedByRemoteAppliesBothDirections) {
  EventLoop loop;
  Network network(loop, 1);
  Collector scanner;
  Collector host;
  const net::IPv4Address kScanner{192, 0, 2, 1};
  network.attach(kScanner, &scanner);
  network.attach(kB, &host);
  PathConfig slow;
  slow.latency = msec(100);
  network.set_path(kB, slow);  // keyed by the host side

  network.send(make_packet(kScanner, kB));  // forward: dst match
  network.send(make_packet(kB, kScanner));  // reverse: src match
  loop.run();
  EXPECT_EQ(loop.now(), msec(100));
  EXPECT_EQ(host.packets.size(), 1u);
  EXPECT_EQ(scanner.packets.size(), 1u);
}

TEST(Network, ReorderingDelaysSomePackets) {
  EventLoop loop;
  Network network(loop, 7);
  Collector b;
  network.attach(kB, &b);
  PathConfig path;
  path.latency = msec(10);
  path.reorder_rate = 0.5;
  path.reorder_delay = msec(50);
  network.set_default_path(path);

  for (int i = 0; i < 200; ++i) network.send(make_packet(kA, kB, i % 7));
  loop.run();
  EXPECT_EQ(b.packets.size(), 200u);
  EXPECT_NEAR(static_cast<double>(network.stats().packets_reordered) / 200.0, 0.5,
              0.1);
}

TEST(Network, OversizedDfPacketTriggersFragNeeded) {
  EventLoop loop;
  Network network(loop, 1);
  Collector a;
  Collector b;
  network.attach(kA, &a);
  network.attach(kB, &b);
  PathConfig path;
  path.path_mtu = 600;
  network.set_path(kB, path);

  network.send(make_packet(kA, kB, 1000, /*df=*/true));
  loop.run();
  EXPECT_TRUE(b.packets.empty()) << "oversized DF packet must not arrive";
  ASSERT_EQ(a.packets.size(), 1u);
  const auto decoded = net::decode_datagram(a.packets[0]);
  ASSERT_TRUE(decoded);
  const auto* icmp = std::get_if<net::IcmpDatagram>(&*decoded);
  ASSERT_NE(icmp, nullptr);
  EXPECT_EQ(icmp->icmp.type, net::IcmpType::DestinationUnreachable);
  EXPECT_EQ(icmp->icmp.code, net::kIcmpFragNeeded);
  EXPECT_EQ(icmp->icmp.seq_or_mtu, 600);
  EXPECT_EQ(network.stats().icmp_frag_needed, 1u);
}

TEST(Network, FittingDfPacketPasses) {
  EventLoop loop;
  Network network(loop, 1);
  Collector b;
  network.attach(kB, &b);
  PathConfig path;
  path.path_mtu = 600;
  network.set_path(kB, path);

  network.send(make_packet(kA, kB, 500, /*df=*/true));  // 540 B total
  loop.run();
  EXPECT_EQ(b.packets.size(), 1u);
}

TEST(Network, JitterStaysWithinBounds) {
  EventLoop loop;
  Network network(loop, 21);
  Collector b;
  network.attach(kB, &b);
  PathConfig path;
  path.latency = msec(10);
  path.jitter = msec(5);
  network.set_default_path(path);

  SimTime last{};
  for (int i = 0; i < 100; ++i) {
    network.send(make_packet(kA, kB));
  }
  loop.run();
  last = loop.now();
  EXPECT_GE(last, msec(10));
  EXPECT_LE(last, msec(15));
  EXPECT_EQ(b.packets.size(), 100u);
}

TEST(Network, DuplicationDeliversTwice) {
  EventLoop loop;
  Network network(loop, 13);
  Collector b;
  network.attach(kB, &b);
  PathConfig path;
  path.duplicate_rate = 1.0;
  path.duplicate_delay = msec(2);
  network.set_default_path(path);

  network.send(make_packet(kA, kB, 10));
  loop.run();
  EXPECT_EQ(b.packets.size(), 2u);
  EXPECT_EQ(b.packets[0], b.packets[1]);
  EXPECT_EQ(network.stats().packets_duplicated, 1u);
}

TEST(Network, FilterDropsDeterministically) {
  EventLoop loop;
  Network network(loop, 1);
  Collector b;
  network.attach(kB, &b);
  int dropped = 0;
  network.set_filter([&](net::PacketView bytes) {
    if (bytes.size() > 60) {
      ++dropped;
      return false;
    }
    return true;
  });
  network.send(make_packet(kA, kB, 0));    // 40 B → passes
  network.send(make_packet(kA, kB, 100));  // 140 B → dropped
  loop.run();
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(network.stats().packets_lost, 1u);
  network.set_filter(nullptr);
}

// ----------------------------------------------------------- capture -----

TEST(Capture, RecordsViaNetworkTap) {
  EventLoop loop;
  Network network(loop, 1);
  Collector b;
  network.attach(kB, &b);
  PacketCapture capture;
  capture.attach(network);

  network.send(make_packet(kA, kB, 5));
  loop.run();
  network.send(make_packet(kB, kA, 0));
  loop.run();

  ASSERT_EQ(capture.size(), 2u);
  EXPECT_LT(capture.entries()[0].timestamp, capture.entries()[1].timestamp);
}

TEST(Capture, TextLooksLikeTcpdump) {
  PacketCapture capture;
  net::TcpSegment segment;
  segment.ip.src = kA;
  segment.ip.dst = kB;
  segment.tcp.src_port = 40000;
  segment.tcp.dst_port = 80;
  segment.tcp.seq = 7;
  segment.tcp.flags = net::kSyn;
  segment.tcp.window = 65535;
  segment.tcp.options.push_back(net::MssOption{64});
  capture.record(msec(1500), net::encode(segment));

  const std::string text = capture.text();
  EXPECT_NE(text.find("1.500000"), std::string::npos);
  EXPECT_NE(text.find("10.0.0.1.40000 > 10.0.0.2.80"), std::string::npos);
  EXPECT_NE(text.find("Flags [S]"), std::string::npos);
  EXPECT_NE(text.find("mss 64"), std::string::npos);
}

TEST(Capture, IcmpFormatting) {
  net::IcmpDatagram echo;
  echo.ip.src = kA;
  echo.ip.dst = kB;
  echo.icmp.type = net::IcmpType::Echo;
  echo.icmp.payload = {1, 2, 3};
  const std::string line = format_packet(net::encode(echo));
  EXPECT_NE(line.find("ICMP echo request"), std::string::npos);
  EXPECT_NE(line.find("length 11"), std::string::npos);
}

TEST(Capture, PcapFileFormat) {
  PacketCapture capture;
  const auto packet = make_packet(kA, kB, 8);
  capture.record(sec(2) + usec(123456), packet);
  const net::Bytes pcap = capture.pcap();

  // Global header: magic, v2.4, snaplen 65535, linktype 101 (RAW).
  ASSERT_GE(pcap.size(), 24u + 16u + packet.size());
  EXPECT_EQ(pcap[0], 0xd4);
  EXPECT_EQ(pcap[1], 0xc3);
  EXPECT_EQ(pcap[2], 0xb2);
  EXPECT_EQ(pcap[3], 0xa1);
  EXPECT_EQ(pcap[4], 2);    // version major (LE)
  EXPECT_EQ(pcap[6], 4);    // version minor
  EXPECT_EQ(pcap[20], 101); // linktype
  // Record header: ts_sec=2, ts_usec=123456, lengths.
  EXPECT_EQ(pcap[24], 2);
  const std::uint32_t usec_field = pcap[28] | (pcap[29] << 8) |
                                   (pcap[30] << 16) |
                                   (static_cast<std::uint32_t>(pcap[31]) << 24);
  EXPECT_EQ(usec_field, 123456u);
  const std::uint32_t incl_len = pcap[32] | (pcap[33] << 8) | (pcap[34] << 16) |
                                 (static_cast<std::uint32_t>(pcap[35]) << 24);
  EXPECT_EQ(incl_len, packet.size());
  // Payload bytes follow verbatim.
  EXPECT_TRUE(std::equal(packet.begin(), packet.end(), pcap.begin() + 40));
}

TEST(Capture, LimitEvictsOldest) {
  PacketCapture capture;
  capture.set_limit(2);
  for (int i = 0; i < 5; ++i) {
    capture.record(msec(i), make_packet(kA, kB, static_cast<std::size_t>(i)));
  }
  EXPECT_EQ(capture.size(), 2u);
  EXPECT_EQ(capture.entries()[0].timestamp, msec(3));
}

TEST(Network, StatsCountBytes) {
  EventLoop loop;
  Network network(loop, 1);
  Collector b;
  network.attach(kB, &b);
  const auto packet = make_packet(kA, kB, 100);
  network.send(packet);
  loop.run();
  EXPECT_EQ(network.stats().bytes_sent, packet.size());
  network.reset_stats();
  EXPECT_EQ(network.stats().packets_sent, 0u);
}

}  // namespace
}  // namespace iwscan::sim
