#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace iwscan::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowIsAlwaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceFrequencies) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(19);
  const double weights[] = {1.0, 3.0, 0.0, 6.0};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(Rng, WeightedDegenerateCases) {
  Rng rng(23);
  EXPECT_EQ(rng.weighted({}), 0u);
  const double zeros[] = {0.0, 0.0};
  EXPECT_EQ(rng.weighted(zeros), 0u);
  const double negatives[] = {-5.0, 2.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted(negatives), 1u);
}

TEST(Mix64, PureAndDispersed) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
  EXPECT_NE(mix64(1, 2), mix64(2, 2));
  // Avalanche sanity: single-bit input change flips many output bits.
  const std::uint64_t a = mix64(99, 1000);
  const std::uint64_t b = mix64(99, 1001);
  EXPECT_GT(__builtin_popcountll(a ^ b), 16);
}

TEST(HashSeed, StableAndSensitive) {
  EXPECT_EQ(hash_seed("iwscan"), hash_seed("iwscan"));
  EXPECT_NE(hash_seed("iwscan"), hash_seed("iwscan2"));
  EXPECT_NE(hash_seed(""), hash_seed("a"));
}

TEST(AliasTable, MatchesWeights) {
  const double weights[] = {0.5, 0.0, 2.0, 1.5};
  AliasTable table(weights);
  Rng rng(29);
  std::map<std::size_t, int> counts;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.125, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.5, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.375, 0.015);
}

TEST(AliasTable, EmptyAndUniformFallback) {
  AliasTable empty;
  Rng rng(1);
  EXPECT_EQ(empty.sample(rng), 0u);
  const double zeros[] = {0.0, 0.0, 0.0};
  AliasTable degenerate(zeros);
  for (int i = 0; i < 50; ++i) EXPECT_LT(degenerate.sample(rng), 3u);
}

// ------------------------------------------------------------ strings ----

TEST(Strings, SplitBasics) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("nosep", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\r\n\tx\r\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
  EXPECT_TRUE(iequals("Connection", "connection"));
  EXPECT_FALSE(iequals("Connection", "connectio"));
  EXPECT_TRUE(istarts_with("Location: x", "location:"));
  EXPECT_FALSE(istarts_with("Loc", "location"));
  EXPECT_TRUE(icontains("Connection: CLOSE", "close"));
  EXPECT_TRUE(icontains("anything", ""));
  EXPECT_FALSE(icontains("short", "longer-needle"));
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("12x").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
}

TEST(Strings, Formatters) {
  EXPECT_EQ(format_bytes(2186), "2186 B");
  EXPECT_EQ(format_bytes(65'000), "65.0 kB");
  EXPECT_EQ(format_bytes(48'300'000), "48.3 MB");
  EXPECT_EQ(format_percent(0.508), "50.8%");
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(48'300'000), "48,300,000");
}

// -------------------------------------------------------------- flags ----

TEST(Flags, ParsesAllKinds) {
  Flags flags;
  flags.define_u64("count", 5, "");
  flags.define_double("rate", 1.5, "");
  flags.define_bool("verbose", false, "");
  flags.define_string("name", "x", "");

  const char* argv[] = {"prog", "--count=7", "--rate", "2.25", "--verbose",
                        "--name=hello"};
  ASSERT_TRUE(flags.parse(6, argv)) << flags.error();
  EXPECT_EQ(flags.u64("count"), 7u);
  EXPECT_DOUBLE_EQ(flags.real("rate"), 2.25);
  EXPECT_TRUE(flags.boolean("verbose"));
  EXPECT_EQ(flags.str("name"), "hello");
}

TEST(Flags, DefaultsSurviveNoArgs) {
  Flags flags;
  flags.define_u64("count", 5, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.u64("count"), 5u);
}

TEST(Flags, NoPrefixDisablesBool) {
  Flags flags;
  flags.define_bool("feature", true, "");
  const char* argv[] = {"prog", "--no-feature"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_FALSE(flags.boolean("feature"));
}

TEST(Flags, RejectsUnknownAndBadValues) {
  Flags flags;
  flags.define_u64("count", 5, "");
  const char* unknown[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.parse(2, unknown));
  EXPECT_NE(flags.error().find("unknown"), std::string::npos);

  Flags flags2;
  flags2.define_u64("count", 5, "");
  const char* bad[] = {"prog", "--count=abc"};
  EXPECT_FALSE(flags2.parse(2, bad));

  Flags flags3;
  flags3.define_u64("count", 5, "");
  const char* positional[] = {"prog", "stray"};
  EXPECT_FALSE(flags3.parse(2, positional));
}

TEST(Flags, HelpRequested) {
  Flags flags;
  flags.define_u64("count", 5, "how many");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.help_requested());
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

TEST(Flags, MissingValueIsError) {
  Flags flags;
  flags.define_string("name", "", "");
  const char* argv[] = {"prog", "--name"};
  EXPECT_FALSE(flags.parse(2, argv));
}

// ------------------------------------------------------------ logging ----

TEST(Logging, SinkReceivesEnabledLevels) {
  auto& logger = Logger::instance();
  const LogLevel old_level = logger.level();
  std::vector<std::string> lines;
  logger.set_sink([&](LogLevel, std::string_view message) {
    lines.emplace_back(message);
  });
  logger.set_level(LogLevel::Info);

  log_debug("hidden ", 1);
  log_info("shown ", 2);
  log_error("also shown");

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "shown 2");
  EXPECT_EQ(lines[1], "also shown");

  logger.set_level(old_level);
  logger.set_sink(nullptr);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::Error), "ERROR");
}

}  // namespace
}  // namespace iwscan::util
