// The bounded-memory spill path end to end: a scan that streams its
// records into columnar spill files must merge back byte-identical to the
// in-RAM result, for every {process × thread} sharding the operator model
// supports (ZMap-style --shard i/N), in both the stateful-everywhere and
// the two-phase executors. This is the contract tools/iwmerge relies on.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/scan_runner.hpp"
#include "analysis/spill_report.hpp"
#include "core/result.hpp"
#include "inetmodel/internet.hpp"
#include "store/spill.hpp"
#include "testbed.hpp"

namespace iwscan::exec {
namespace {

namespace fs = std::filesystem;

// A fresh small world per run: byte-identity across shardings is
// guaranteed for identically-seeded worlds (a reused loop would have
// advanced its per-flow impairment streams).
struct FreshWorld {
  sim::EventLoop loop;
  sim::Network network{loop, 123};
  model::InternetModel internet;

  FreshWorld() : internet(network, make_config()) { internet.install(); }

  static model::ModelConfig make_config() {
    model::ModelConfig config;
    config.scale_log2 = 12;  // 4 Ki addresses — the smallest supported world
    return config;
  }
};

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("iwscan_exec_spill_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

analysis::ScanOptions base_options(std::uint64_t threads) {
  analysis::ScanOptions options;
  options.protocol = core::ProbeProtocol::Http;
  options.rate_pps = 40'000;
  options.scan_seed = test::env_scan_seed(7);
  options.shards = threads;
  return options;
}

/// Runs one process of an N-process scan on its own fresh world, spilling
/// into `dir`, and appends the spill files it produced.
void run_process_shard(analysis::ScanOptions options, std::uint64_t process,
                       std::uint64_t processes, const fs::path& dir,
                       std::vector<std::string>& host_files,
                       std::vector<std::string>& sweep_files) {
  options.process_shard = process;
  options.process_shards = processes;
  options.spill_dir = (dir / ("p" + std::to_string(process))).string();
  options.spill_segment_bytes = 1u << 12;  // force multi-segment spills
  FreshWorld world;
  const analysis::ScanOutput output =
      analysis::run_iw_scan(world.network, world.internet, options);
  EXPECT_TRUE(output.records.empty());  // spill mode keeps records on disk
  host_files.insert(host_files.end(), output.spill_files.begin(),
                    output.spill_files.end());
  sweep_files.insert(sweep_files.end(), output.sweep_spill_files.begin(),
                     output.sweep_spill_files.end());
}

void expect_record_identity(const std::vector<core::HostScanRecord>& got,
                            const std::vector<core::HostScanRecord>& want,
                            const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(got[i] == want[i])
        << label << ": record " << i << " diverges (ip "
        << want[i].ip.to_string() << ")";
  }
}

// ----------------------------------------- stateful-everywhere spills ----

TEST(ExecSpill, SpilledScanMergesBackIdenticalToInRamScan) {
  const fs::path dir = scratch_dir("stateful");
  FreshWorld in_ram_world;
  const analysis::ScanOutput in_ram = analysis::run_iw_scan(
      in_ram_world.network, in_ram_world.internet, base_options(1));
  ASSERT_FALSE(in_ram.records.empty());

  std::vector<std::string> host_files;
  std::vector<std::string> sweep_files;
  run_process_shard(base_options(1), 0, 1, dir, host_files, sweep_files);
  ASSERT_EQ(host_files.size(), 1u);
  EXPECT_TRUE(sweep_files.empty());

  std::vector<core::HostScanRecord> merged;
  std::string error;
  ASSERT_TRUE(store::read_merged<core::HostScanRecord>(host_files, merged, &error))
      << error;
  expect_record_identity(merged, in_ram.records, "single process");
  fs::remove_all(dir);
}

TEST(ExecSpill, ProcessThreadMatrixMergesByteIdenticalToSingleProcess) {
  FreshWorld baseline_world;
  const analysis::ScanOutput baseline = analysis::run_iw_scan(
      baseline_world.network, baseline_world.internet, base_options(1));
  ASSERT_FALSE(baseline.records.empty());

  for (const std::uint64_t processes : {1u, 2u, 4u}) {
    for (const std::uint64_t threads : {1u, 2u}) {
      const std::string label = std::to_string(processes) + " procs x " +
                                std::to_string(threads) + " threads";
      const fs::path dir = scratch_dir("matrix");
      std::vector<std::string> host_files;
      std::vector<std::string> sweep_files;
      for (std::uint64_t p = 0; p < processes; ++p) {
        run_process_shard(base_options(threads), p, processes, dir, host_files,
                          sweep_files);
      }
      ASSERT_EQ(host_files.size(), processes * threads) << label;

      std::vector<core::HostScanRecord> merged;
      std::string error;
      ASSERT_TRUE(
          store::read_merged<core::HostScanRecord>(host_files, merged, &error))
          << label << ": " << error;
      expect_record_identity(merged, baseline.records, label);
      fs::remove_all(dir);
    }
  }
}

// --------------------------------------------------- two-phase spills ----

TEST(ExecSpill, TwoPhaseSpillMergesIdenticalHostAndSweepRecords) {
  analysis::ScanOptions options = base_options(1);
  options.two_phase = true;
  options.sweep_rate_pps = 400'000;

  FreshWorld in_ram_world;
  const analysis::ScanOutput in_ram =
      analysis::run_iw_scan(in_ram_world.network, in_ram_world.internet, options);
  ASSERT_FALSE(in_ram.records.empty());
  ASSERT_FALSE(in_ram.sweep_records.empty());

  for (const std::uint64_t processes : {1u, 2u}) {
    const std::string label = "two-phase, " + std::to_string(processes) + " procs";
    const fs::path dir = scratch_dir("two_phase");
    std::vector<std::string> host_files;
    std::vector<std::string> sweep_files;
    for (std::uint64_t p = 0; p < processes; ++p) {
      run_process_shard(options, p, processes, dir, host_files, sweep_files);
    }
    ASSERT_EQ(host_files.size(), processes) << label;
    ASSERT_EQ(sweep_files.size(), processes) << label;

    std::vector<core::HostScanRecord> merged;
    std::string error;
    ASSERT_TRUE(store::read_merged<core::HostScanRecord>(host_files, merged, &error))
        << label << ": " << error;
    expect_record_identity(merged, in_ram.records, label);

    std::vector<scan::SweepRecord> sweeps;
    ASSERT_TRUE(store::read_merged<scan::SweepRecord>(sweep_files, sweeps, &error))
        << label << ": " << error;
    ASSERT_EQ(sweeps.size(), in_ram.sweep_records.size()) << label;
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      ASSERT_TRUE(sweeps[i] == in_ram.sweep_records[i])
          << label << ": sweep record " << i << " diverges";
    }
    fs::remove_all(dir);
  }
}

TEST(ExecSpill, CappedTwoPhaseSpillKeepsDeterministicTruncation) {
  analysis::ScanOptions options = base_options(2);
  options.two_phase = true;
  options.sweep_rate_pps = 400'000;
  options.max_promoted_hosts = 64;

  FreshWorld in_ram_world;
  const analysis::ScanOutput in_ram =
      analysis::run_iw_scan(in_ram_world.network, in_ram_world.internet, options);
  ASSERT_EQ(in_ram.records.size(), 64u);
  ASSERT_GT(in_ram.truncated, 0u);

  const fs::path dir = scratch_dir("capped");
  std::vector<std::string> host_files;
  std::vector<std::string> sweep_files;
  run_process_shard(options, 0, 1, dir, host_files, sweep_files);

  std::vector<core::HostScanRecord> merged;
  std::string error;
  ASSERT_TRUE(store::read_merged<core::HostScanRecord>(host_files, merged, &error))
      << error;
  expect_record_identity(merged, in_ram.records, "capped two-phase");
  fs::remove_all(dir);
}

// ------------------------------------------- analysis-layer read path ----

TEST(ExecSpill, SpillSummaryMatchesInRamSummary) {
  FreshWorld in_ram_world;
  const analysis::ScanOutput in_ram = analysis::run_iw_scan(
      in_ram_world.network, in_ram_world.internet, base_options(1));
  const analysis::DatasetSummary want = analysis::summarize(in_ram.records);

  const fs::path dir = scratch_dir("summary");
  std::vector<std::string> host_files;
  std::vector<std::string> sweep_files;
  run_process_shard(base_options(1), 0, 1, dir, host_files, sweep_files);

  analysis::SpillSummary summary;
  std::string error;
  ASSERT_TRUE(
      analysis::summarize_spill_files({(dir / "p0").string()}, summary, error))
      << error;
  EXPECT_EQ(summary.records, in_ram.records.size());
  EXPECT_EQ(summary.seed, test::env_scan_seed(7));
  EXPECT_EQ(summary.summary.probed, want.probed);
  EXPECT_EQ(summary.summary.reachable, want.reachable);
  EXPECT_EQ(summary.summary.success, want.success);
  EXPECT_EQ(summary.summary.few_data, want.few_data);
  EXPECT_EQ(summary.summary.error, want.error);
  fs::remove_all(dir);
}

TEST(ExecSpill, MergeLevelValidationSurfacesOperatorMistakes) {
  const fs::path dir = scratch_dir("validation");
  std::vector<std::string> host_files;
  std::vector<std::string> sweep_files;
  run_process_shard(base_options(1), 0, 2, dir, host_files, sweep_files);

  analysis::ScanOptions other_seed = base_options(1);
  other_seed.scan_seed = test::env_scan_seed(7) + 1;
  other_seed.process_shard = 1;
  other_seed.process_shards = 2;
  other_seed.spill_dir = (dir / "p1").string();
  FreshWorld world;
  const analysis::ScanOutput output =
      analysis::run_iw_scan(world.network, world.internet, other_seed);
  ASSERT_FALSE(output.spill_files.empty());

  // Shard 0 and shard 1 of *different* scans: iwmerge must refuse.
  analysis::SpillSummary summary;
  std::string error;
  EXPECT_FALSE(analysis::summarize_spill_files(
      {(dir / "p0").string(), (dir / "p1").string()}, summary, error));
  EXPECT_NE(error.find("mixed scan seeds"), std::string::npos) << error;

  // A duplicated shard (here: a stray copy of the same spill file) is an
  // overlapping-stride error, not a silent double count.
  const fs::path dup = dir / "host-duplicate.iwspill";
  fs::copy_file(host_files.front(), dup);
  error.clear();
  EXPECT_FALSE(analysis::summarize_spill_files(
      {host_files.front(), dup.string()}, summary, error));
  EXPECT_NE(error.find("overlapping shards"), std::string::npos) << error;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace iwscan::exec
