// End-to-end scans of the simulated Internet: engine + prober + population.
// These tests assert the *shape* of the paper's headline results on a
// small universe (Table 1 rates, Fig. 3 dominance, ground-truth accuracy).
#include <gtest/gtest.h>

#include <set>

#include "analysis/iw_table.hpp"
#include "analysis/scan_runner.hpp"
#include "inetmodel/internet.hpp"

namespace iwscan {
namespace {

struct SmallInternet {
  sim::EventLoop loop;
  sim::Network network{loop, 123};
  model::InternetModel internet;

  explicit SmallInternet(int scale = 14, double loss = 0.002)
      : internet(network, make_config(scale, loss)) {
    internet.install();
  }

  static model::ModelConfig make_config(int scale, double loss) {
    model::ModelConfig config;
    config.scale_log2 = scale;  // 16 Ki addresses — a few thousand hosts
    config.loss_rate = loss;
    return config;
  }
};

analysis::ScanOptions http_options() {
  analysis::ScanOptions options;
  options.protocol = core::ProbeProtocol::Http;
  options.rate_pps = 40'000;
  return options;
}

analysis::ScanOptions tls_options() {
  analysis::ScanOptions options;
  options.protocol = core::ProbeProtocol::Tls;
  options.rate_pps = 40'000;
  return options;
}

TEST(Integration, HttpScanCompletesAndClassifies) {
  SmallInternet world;
  const auto output = analysis::run_iw_scan(world.network, world.internet,
                                            http_options());

  ASSERT_GT(output.records.size(), 500u);
  const auto summary = analysis::summarize(output.records);
  EXPECT_GT(summary.reachable, 300u);
  // Table 1 shape: success around half, few-data most of the rest, errors
  // marginal.
  EXPECT_GT(summary.success_rate(), 0.35);
  EXPECT_LT(summary.success_rate(), 0.70);
  EXPECT_GT(summary.few_data_rate(), 0.25);
  EXPECT_LT(summary.error_rate(), 0.06);
}

TEST(Integration, TlsScanHasHigherSuccessRateThanHttp) {
  SmallInternet world;
  const auto http = analysis::run_iw_scan(world.network, world.internet,
                                          http_options());
  const auto tls = analysis::run_iw_scan(world.network, world.internet,
                                         tls_options());

  const auto http_summary = analysis::summarize(http.records);
  const auto tls_summary = analysis::summarize(tls.records);
  // §4 "Success rates": TLS probing succeeds far more often (85.6% vs
  // 50.8%) because certificate chains supply the data.
  EXPECT_GT(tls_summary.success_rate(), http_summary.success_rate() + 0.15);
  EXPECT_GT(tls_summary.success_rate(), 0.70);
}

TEST(Integration, StandardIwsDominate) {
  SmallInternet world;
  const auto output = analysis::run_iw_scan(world.network, world.internet,
                                            http_options());
  const auto fractions = analysis::iw_fractions(output.records);

  double standard = 0.0;
  for (const std::uint32_t iw : {1u, 2u, 3u, 4u, 10u}) {
    if (const auto it = fractions.find(iw); it != fractions.end()) {
      standard += it->second;
    }
  }
  // Fig. 3: IWs 1/2/4/10 cover > 97% (we include 3 as the paper's x-axis
  // does); our synthetic population keeps the same dominance.
  EXPECT_GT(standard, 0.90);
  ASSERT_TRUE(fractions.contains(10));
  EXPECT_GT(fractions.at(10), 0.25);
}

TEST(Integration, EstimatesMatchGroundTruth) {
  SmallInternet world;
  const auto output = analysis::run_iw_scan(world.network, world.internet,
                                            http_options());

  std::uint64_t checked = 0;
  std::uint64_t exact = 0;
  for (const auto& record : output.records) {
    if (record.outcome != core::HostOutcome::Success) continue;
    const auto gt = world.internet.truth(record.ip);
    ASSERT_TRUE(gt.present);
    const std::uint32_t expected = gt.true_iw_segments(/*for_tls=*/false, 64);
    ++checked;
    if (record.iw_segments == expected) ++exact;
    EXPECT_LE(record.iw_segments, expected)
        << record.ip.to_string() << ": overestimate";
  }
  ASSERT_GT(checked, 200u);
  // Near-perfect accuracy at 0.2% loss; tail loss may shave a few.
  EXPECT_GT(static_cast<double>(exact) / static_cast<double>(checked), 0.97);
}

TEST(Integration, FewDataLowerBoundsNeverExceedTruth) {
  SmallInternet world;
  const auto output = analysis::run_iw_scan(world.network, world.internet,
                                            http_options());

  std::uint64_t few = 0;
  for (const auto& record : output.records) {
    if (record.outcome != core::HostOutcome::FewData) continue;
    const auto gt = world.internet.truth(record.ip);
    const std::uint32_t truth = gt.true_iw_segments(false, 64);
    ++few;
    EXPECT_LE(record.lower_bound, truth)
        << record.ip.to_string() << ": bound above the real IW";
  }
  EXPECT_GT(few, 100u);
}

TEST(Integration, SamplingIsDeterministicAndScansSubset) {
  SmallInternet world;
  analysis::ScanOptions options = http_options();
  options.sample_fraction = 0.25;
  const auto a = analysis::run_iw_scan(world.network, world.internet, options);
  const auto b = analysis::run_iw_scan(world.network, world.internet, options);
  EXPECT_EQ(a.records.size(), b.records.size());
  EXPECT_LT(a.engine.targets_started, world.internet.registry().scan_space_size() / 2);
}

TEST(Integration, PopularSpaceIsIw10Dominated) {
  SmallInternet world(15);
  analysis::ScanOptions options = http_options();
  options.popular_space = true;
  const auto output = analysis::run_iw_scan(world.network, world.internet, options);

  const auto summary = analysis::summarize(output.records);
  ASSERT_GT(summary.success, 50u);
  // Fig. 4: popular hosts succeed more often and are dominated by IW 10.
  EXPECT_GT(summary.success_rate(), 0.65);
  const auto fractions = analysis::iw_fractions(output.records);
  ASSERT_TRUE(fractions.contains(10));
  EXPECT_GT(fractions.at(10), 0.70);
}

TEST(Integration, ShardedScannersPartitionTheWork) {
  // Distributed scanning (ZMap's shard model): two engines with disjoint
  // shards of the same permutation must cover every host exactly once.
  SmallInternet world;
  std::vector<core::HostScanRecord> all_records;

  for (std::uint64_t shard = 0; shard < 2; ++shard) {
    core::IwScanConfig probe;
    probe.protocol = core::ProbeProtocol::Http;
    probe.port = 80;
    scan::TargetGenerator targets(world.internet.registry().scan_space(), {},
                                  /*seed=*/7, 1.0, shard, 2);
    core::IwProbeModule module(probe, [&](const core::HostScanRecord& record) {
      all_records.push_back(record);
    });
    scan::EngineConfig engine_config;
    engine_config.scanner_address =
        net::IPv4Address{192, 0, 2, static_cast<std::uint8_t>(10 + shard)};
    engine_config.rate_pps = 40'000;
    scan::ScanEngine engine(world.network, engine_config, std::move(targets),
                            module);
    engine.start();
    while (!engine.done() && world.loop.step()) {
    }
  }

  std::set<net::IPv4Address> unique;
  for (const auto& record : all_records) {
    EXPECT_TRUE(unique.insert(record.ip).second)
        << record.ip.to_string() << " probed by both shards";
  }
  EXPECT_EQ(all_records.size(),
            world.internet.registry().scan_space_size());
}

TEST(Integration, HostsAreEvictedAfterScan) {
  SmallInternet world;
  const auto output = analysis::run_iw_scan(world.network, world.internet,
                                            http_options());
  ASSERT_GT(output.records.size(), 100u);
  // Drain the remaining idle/sweep events for a minute of virtual time.
  world.loop.run_until(world.loop.now() + sim::sec(60));
  EXPECT_LT(world.internet.live_hosts(), world.internet.hosts_instantiated() / 10)
      << "sweeper failed to evict quiescent hosts";
}

}  // namespace
}  // namespace iwscan
