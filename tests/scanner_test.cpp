// Scanner engine substrate: address permutation, target generation,
// pacing, and the single-exchange probe modules.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <set>
#include <string_view>
#include <utility>

#include "httpd/http_server.hpp"
#include "netbase/checksum.hpp"
#include "netbase/packet.hpp"
#include "scanner/icmp_mtu.hpp"
#include "scanner/permutation.hpp"
#include "scanner/scan_engine.hpp"
#include "scanner/stateless.hpp"
#include "scanner/syn_scan.hpp"
#include "scanner/syncookie.hpp"
#include "scanner/targets.hpp"
#include "tcpstack/host.hpp"

namespace iwscan::scan {
namespace {

// -------------------------------------------------------- permutation ----

class PermutationDomain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationDomain, IsABijection) {
  const std::uint64_t domain = GetParam();
  RandomPermutation permutation(domain, 42);
  std::vector<bool> seen(domain, false);
  for (std::uint64_t i = 0; i < domain; ++i) {
    const std::uint64_t image = permutation.permute(i);
    ASSERT_LT(image, domain);
    ASSERT_FALSE(seen[image]) << "collision at index " << i;
    seen[image] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, PermutationDomain,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 100u, 257u,
                                           1024u, 5000u, 65536u, 100'000u));

TEST(Permutation, DeterministicPerSeed) {
  RandomPermutation a(1000, 7);
  RandomPermutation b(1000, 7);
  RandomPermutation c(1000, 8);
  bool any_different = false;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.permute(i), b.permute(i));
    any_different |= a.permute(i) != c.permute(i);
  }
  EXPECT_TRUE(any_different);
}

TEST(Permutation, LooksShuffled) {
  // Not a randomness test — just that consecutive indices don't map to
  // consecutive addresses (the whole point of ZMap-style iteration).
  RandomPermutation permutation(1 << 16, 3);
  int adjacent = 0;
  for (std::uint64_t i = 0; i + 1 < 1000; ++i) {
    const auto a = permutation.permute(i);
    const auto b = permutation.permute(i + 1);
    if (b == a + 1 || a == b + 1) ++adjacent;
  }
  EXPECT_LT(adjacent, 5);
}

TEST(Permutation, ShardsPartitionTheDomain) {
  RandomPermutation permutation(1000, 5);
  std::set<std::uint64_t> all;
  for (std::uint64_t shard = 0; shard < 4; ++shard) {
    PermutationIterator it(permutation, shard, 4);
    std::uint64_t value = 0;
    while (it.next(value)) {
      EXPECT_TRUE(all.insert(value).second) << "shards must not overlap";
    }
  }
  EXPECT_EQ(all.size(), 1000u);
}

// ------------------------------------------------------------ targets ----

TEST(TargetGenerator, VisitsEveryAddressExactlyOnce) {
  TargetGenerator targets({*net::Cidr::parse("10.0.0.0/24"),
                           *net::Cidr::parse("10.0.5.0/25")},
                          {}, 9);
  std::set<net::IPv4Address> seen;
  while (const auto addr = targets.next()) {
    EXPECT_TRUE(seen.insert(*addr).second);
  }
  EXPECT_EQ(seen.size(), 256u + 128u);
  EXPECT_EQ(targets.address_space_size(), 384u);
  // Every address belongs to one of the allow blocks.
  for (const auto& addr : seen) {
    EXPECT_TRUE(net::Cidr::parse("10.0.0.0/24")->contains(addr) ||
                net::Cidr::parse("10.0.5.0/25")->contains(addr));
  }
}

TEST(TargetGenerator, BlocklistIsNeverEmitted) {
  TargetGenerator targets({*net::Cidr::parse("10.0.0.0/24")},
                          {*net::Cidr::parse("10.0.0.128/25")}, 9);
  std::size_t count = 0;
  while (const auto addr = targets.next()) {
    EXPECT_LT(addr->octet(3), 128);
    ++count;
  }
  EXPECT_EQ(count, 128u);
  EXPECT_EQ(targets.skipped_blocked(), 128u);
}

TEST(TargetGenerator, SamplingIsDeterministicAndProportional) {
  const std::vector<net::Cidr> space = {*net::Cidr::parse("10.0.0.0/16")};
  TargetGenerator a(space, {}, 42, 0.1);
  TargetGenerator b(space, {}, 42, 0.1);
  std::vector<net::IPv4Address> sample_a;
  while (const auto addr = a.next()) sample_a.push_back(*addr);
  std::vector<net::IPv4Address> sample_b;
  while (const auto addr = b.next()) sample_b.push_back(*addr);
  EXPECT_EQ(sample_a, sample_b);
  EXPECT_NEAR(static_cast<double>(sample_a.size()) / 65536.0, 0.1, 0.01);
}

TEST(TargetGenerator, DifferentSeedsDifferentOrder) {
  const std::vector<net::Cidr> space = {*net::Cidr::parse("10.0.0.0/24")};
  TargetGenerator a(space, {}, 1);
  TargetGenerator b(space, {}, 2);
  int same_position = 0;
  for (int i = 0; i < 256; ++i) {
    if (*a.next() == *b.next()) ++same_position;
  }
  EXPECT_LT(same_position, 20);
}

TEST(TargetGenerator, CopiesAndMovesKeepEmittingTheSameSequence) {
  // Regression: iterator_ points at the generator's own permutation_, so a
  // memberwise copy/move left it aimed at the source object — a dangling
  // read once a temporary source died (ASan stack-use-after-scope via
  // ScanEngine's by-value TargetGenerator parameter).
  const std::vector<net::Cidr> space = {*net::Cidr::parse("10.0.0.0/23")};
  TargetGenerator reference(space, {}, 17);
  for (int i = 0; i < 5; ++i) (void)reference.next();

  TargetGenerator copied(reference);
  TargetGenerator move_source(space, {}, 17);
  for (int i = 0; i < 5; ++i) (void)move_source.next();
  TargetGenerator moved(std::move(move_source));
  TargetGenerator copy_assigned(space, {}, 99);
  copy_assigned = reference;
  TargetGenerator move_assigned(space, {}, 99);
  move_assigned = TargetGenerator(copied);

  while (const auto addr = reference.next()) {
    EXPECT_EQ(*copied.next(), *addr);
    EXPECT_EQ(*moved.next(), *addr);
    EXPECT_EQ(*copy_assigned.next(), *addr);
    EXPECT_EQ(*move_assigned.next(), *addr);
  }
  EXPECT_FALSE(copied.next().has_value());
  EXPECT_EQ(copied.emitted(), reference.emitted());
  EXPECT_EQ(copied.last_cycle_index(), reference.last_cycle_index());
}

TEST(TargetGenerator, ShardedScansPartition) {
  const std::vector<net::Cidr> space = {*net::Cidr::parse("10.0.0.0/22")};
  std::set<net::IPv4Address> all;
  for (std::uint64_t shard = 0; shard < 3; ++shard) {
    TargetGenerator targets(space, {}, 5, 1.0, shard, 3);
    while (const auto addr = targets.next()) {
      EXPECT_TRUE(all.insert(*addr).second);
    }
  }
  EXPECT_EQ(all.size(), 1024u);
}

TEST(ParseCidrList, ZmapBlocklistFormat) {
  const std::string text =
      "# IANA reserved\n"
      "0.0.0.0/8\n"
      "10.0.0.0/8   # private\n"
      "\n"
      "192.168.1.1\n"
      "not-a-cidr\n"
      "300.0.0.0/8\n";
  std::vector<std::string> errors;
  const auto list = parse_cidr_list(text, &errors);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].prefix_len, 8);
  EXPECT_EQ(list[1].first(), net::IPv4Address(10, 0, 0, 0));
  EXPECT_EQ(list[2].prefix_len, 32);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], "not-a-cidr");
}

TEST(ParseCidrList, EmptyAndCommentOnly) {
  EXPECT_TRUE(parse_cidr_list("").empty());
  EXPECT_TRUE(parse_cidr_list("# nothing\n   \n# more\n").empty());
}

TEST(ParseCidrList, CrlfLineEndingsAndMissingTrailingNewline) {
  // Blocklists edited on Windows arrive with CRLF; files also frequently
  // end without a final newline. Both must parse identically to LF input.
  const std::string text =
      "10.0.0.0/8\r\n"
      "# comment line\r\n"
      "192.168.0.0/16   # trailing comment\r\n"
      "172.16.0.0/12";  // no trailing newline
  std::vector<std::string> errors;
  const auto list = parse_cidr_list(text, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].first(), net::IPv4Address(10, 0, 0, 0));
  EXPECT_EQ(list[1].first(), net::IPv4Address(192, 168, 0, 0));
  EXPECT_EQ(list[2].first(), net::IPv4Address(172, 16, 0, 0));
  EXPECT_EQ(list[2].prefix_len, 12);
}

// ------------------------------------------------ allowlist normalization ----

TEST(TargetGenerator, NestedAndDuplicateAllowBlocksAreMerged) {
  // 10.0.0.0/26 is nested in 10.0.0.0/24, and the /24 repeats: both extras
  // merge away, so every address is emitted exactly once.
  TargetGenerator targets({*net::Cidr::parse("10.0.0.0/24"),
                           *net::Cidr::parse("10.0.0.0/26"),
                           *net::Cidr::parse("10.0.0.0/24"),
                           *net::Cidr::parse("10.1.0.0/24")},
                          {}, 9);
  EXPECT_EQ(targets.address_space_size(), 512u);
  EXPECT_EQ(targets.merged_overlap(), 64u + 256u);
  std::set<net::IPv4Address> seen;
  while (const auto addr = targets.next()) {
    EXPECT_TRUE(seen.insert(*addr).second) << addr->to_string();
  }
  EXPECT_EQ(seen.size(), 512u);
}

TEST(TargetGenerator, NestedBlockListedBeforeItsParentIsMerged) {
  TargetGenerator targets({*net::Cidr::parse("10.0.0.0/26"),
                           *net::Cidr::parse("10.0.0.0/24")},
                          {}, 9);
  EXPECT_EQ(targets.address_space_size(), 256u);
  EXPECT_EQ(targets.merged_overlap(), 64u);
  std::set<net::IPv4Address> seen;
  while (const auto addr = targets.next()) seen.insert(*addr);
  EXPECT_EQ(seen.size(), 256u);
}

TEST(TargetGenerator, NormalizationPreservesDisjointInputOrder) {
  // Dropping nested blocks must not disturb the index→address assignment
  // of the surviving blocks: the emission sequence with redundant blocks
  // removed equals the sequence over the already-disjoint input.
  const std::vector<net::Cidr> with_overlap = {
      *net::Cidr::parse("10.0.0.0/25"), *net::Cidr::parse("10.0.0.0/26"),
      *net::Cidr::parse("10.9.0.0/26")};
  const std::vector<net::Cidr> disjoint = {*net::Cidr::parse("10.0.0.0/25"),
                                           *net::Cidr::parse("10.9.0.0/26")};
  TargetGenerator a(with_overlap, {}, 11);
  TargetGenerator b(disjoint, {}, 11);
  EXPECT_EQ(b.merged_overlap(), 0u);
  while (true) {
    const auto addr_a = a.next();
    const auto addr_b = b.next();
    EXPECT_EQ(addr_a, addr_b);
    if (!addr_a || !addr_b) break;
  }
}

// ---------------------------------------------------- shard partitioning ----

TEST(TargetGenerator, ShardUnionEqualsSingleShardEmission) {
  // Property (the contract the parallel executor builds on): for any
  // (seed, N), the N shards' emissions partition the shards=1 emission set
  // — union equal, pairwise disjoint — and the skip accounting sums up.
  const std::vector<net::Cidr> space = {*net::Cidr::parse("10.0.0.0/22"),
                                        *net::Cidr::parse("10.1.0.0/24")};
  const std::vector<net::Cidr> block = {*net::Cidr::parse("10.0.2.0/25")};
  for (const std::uint64_t seed : {3u, 7u, 19u}) {
    for (const std::uint64_t total_shards : {2u, 3u, 4u, 8u}) {
      TargetGenerator whole(space, block, seed, 0.6);
      std::set<net::IPv4Address> single;
      while (const auto addr = whole.next()) single.insert(*addr);

      std::set<net::IPv4Address> merged;
      std::uint64_t emitted = 0, blocked = 0, sampled_out = 0;
      for (std::uint64_t shard = 0; shard < total_shards; ++shard) {
        TargetGenerator part(space, block, seed, 0.6, shard, total_shards);
        while (const auto addr = part.next()) {
          EXPECT_TRUE(merged.insert(*addr).second)
              << "shards overlap at " << addr->to_string();
        }
        emitted += part.emitted();
        blocked += part.skipped_blocked();
        sampled_out += part.skipped_sampled_out();
      }
      EXPECT_EQ(merged, single) << "seed " << seed << " N " << total_shards;
      EXPECT_EQ(emitted, whole.emitted());
      EXPECT_EQ(blocked, whole.skipped_blocked());
      EXPECT_EQ(sampled_out, whole.skipped_sampled_out());
    }
  }
}

TEST(TargetGenerator, CycleIndexRecoversSingleShardOrderAcrossShards) {
  // Tagging each emission with its global cycle index and sorting merges
  // shard streams back into the exact shards=1 order — the deterministic
  // merge key of exec::ParallelScanRunner.
  const std::vector<net::Cidr> space = {*net::Cidr::parse("10.0.0.0/23")};
  const std::vector<net::Cidr> block = {*net::Cidr::parse("10.0.0.64/26")};
  std::vector<net::IPv4Address> single;
  TargetGenerator whole(space, block, 13, 0.8);
  while (const auto addr = whole.next()) single.push_back(*addr);

  std::vector<std::pair<std::uint64_t, net::IPv4Address>> tagged;
  for (std::uint64_t shard = 0; shard < 4; ++shard) {
    TargetGenerator part(space, block, 13, 0.8, shard, 4);
    while (const auto addr = part.next()) {
      tagged.emplace_back(part.last_cycle_index(), *addr);
    }
  }
  std::sort(tagged.begin(), tagged.end());
  std::vector<net::IPv4Address> merged;
  merged.reserve(tagged.size());
  for (const auto& [cycle, addr] : tagged) merged.push_back(addr);
  EXPECT_EQ(merged, single);
}

// -------------------------------------------------------- scan engine ----

struct EngineRig {
  sim::EventLoop loop;
  sim::Network network{loop, 11};
  std::vector<std::unique_ptr<tcp::TcpHost>> hosts;

  void add_host(net::IPv4Address ip, bool listening) {
    tcp::StackConfig stack;
    stack.iw = tcp::IwConfig::segments_of(10);
    auto host = std::make_unique<tcp::TcpHost>(network, ip, stack, ip.value());
    if (listening) {
      http::WebConfig web;
      web.page_size = 2000;
      host->listen(80, http::HttpServerApp::factory(web));
    }
    network.attach(ip, host.get());
    hosts.push_back(std::move(host));
  }
};

TEST(ScanEngine, SynScanClassifiesAllThreeStates) {
  EngineRig rig;
  // 10.2.0.0/28: .0-.4 open, .5-.9 closed-port hosts, rest dark.
  for (int i = 0; i < 5; ++i) rig.add_host(net::IPv4Address(10, 2, 0, static_cast<std::uint8_t>(i)), true);
  for (int i = 5; i < 10; ++i) rig.add_host(net::IPv4Address(10, 2, 0, static_cast<std::uint8_t>(i)), false);

  std::map<PortState, int> counts;
  SynScanConfig config;
  config.timeout = sim::sec(2);
  SynScanModule module(config, [&](const SynScanResult& result) {
    ++counts[result.state];
  });
  TargetGenerator targets({*net::Cidr::parse("10.2.0.0/28")}, {}, 3);
  EngineConfig engine_config;
  engine_config.rate_pps = 1000;
  ScanEngine engine(rig.network, engine_config, std::move(targets), module);
  engine.start();
  while (!engine.done() && rig.loop.step()) {
  }

  EXPECT_EQ(counts[PortState::Open], 5);
  EXPECT_EQ(counts[PortState::Closed], 5);
  EXPECT_EQ(counts[PortState::Unresponsive], 6);
  EXPECT_EQ(engine.stats().targets_started, 16u);
  EXPECT_EQ(engine.stats().targets_finished, 16u);
  EXPECT_TRUE(engine.done());
}

TEST(ScanEngine, PacingSpreadsSessionStarts) {
  EngineRig rig;
  SynScanConfig config;
  config.timeout = sim::msec(100);
  SynScanModule module(config, [](const SynScanResult&) {});
  TargetGenerator targets({*net::Cidr::parse("10.3.0.0/24")}, {}, 3);
  EngineConfig engine_config;
  engine_config.rate_pps = 1000;  // 1 ms per target → 256 ms minimum
  ScanEngine engine(rig.network, engine_config, std::move(targets), module);
  engine.start();
  while (!engine.done() && rig.loop.step()) {
  }
  const auto duration = engine.stats().finished_at - engine.stats().started_at;
  EXPECT_GE(duration, sim::msec(255));
  EXPECT_LE(duration, sim::msec(500));
}

TEST(ScanEngine, OutstandingCapThrottles) {
  EngineRig rig;
  SynScanConfig config;
  config.timeout = sim::msec(500);  // every session lives 500 ms (all dark)
  SynScanModule module(config, [](const SynScanResult&) {});
  TargetGenerator targets({*net::Cidr::parse("10.4.0.0/24")}, {}, 3);
  EngineConfig engine_config;
  engine_config.rate_pps = 1'000'000;  // pacing not the bottleneck
  engine_config.max_outstanding = 16;
  ScanEngine engine(rig.network, engine_config, std::move(targets), module);
  engine.start();
  while (!engine.done() && rig.loop.step()) {
  }
  // 256 targets / 16 concurrent × 500 ms ≈ 8 s minimum.
  EXPECT_GE(engine.stats().finished_at - engine.stats().started_at, sim::sec(7));
  EXPECT_EQ(engine.stats().targets_finished, 256u);
}

TEST(ScanEngine, CompletionCallbackFires) {
  EngineRig rig;
  SynScanConfig config;
  config.timeout = sim::msec(10);
  SynScanModule module(config, [](const SynScanResult&) {});
  TargetGenerator targets({*net::Cidr::parse("10.5.0.0/30")}, {}, 3);
  ScanEngine engine(rig.network, EngineConfig{}, std::move(targets), module);
  bool completed = false;
  engine.set_on_complete([&] { completed = true; });
  engine.start();
  while (!engine.done() && rig.loop.step()) {
  }
  EXPECT_TRUE(completed);
}

// --------------------------------------------------------- ICMP MTU ------

class MtuDiscovery : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MtuDiscovery, FindsConfiguredPathMtu) {
  const std::uint32_t mtu = GetParam();
  EngineRig rig;
  const net::IPv4Address host_ip{10, 6, 0, 1};
  rig.add_host(host_ip, false);
  sim::PathConfig path = rig.network.default_path();
  path.path_mtu = mtu;
  rig.network.set_path(host_ip, path);

  std::vector<MtuProbeResult> results;
  IcmpMtuModule module({}, [&](const MtuProbeResult& r) { results.push_back(r); });
  TargetGenerator targets({*net::Cidr::parse("10.6.0.1/32")}, {}, 3);
  ScanEngine engine(rig.network, EngineConfig{}, std::move(targets), module);
  engine.start();
  while (!engine.done() && rig.loop.step()) {
  }

  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].responded);
  EXPECT_EQ(results[0].path_mtu, mtu);
  EXPECT_EQ(results[0].supported_mss(), mtu - 40);
}

INSTANTIATE_TEST_SUITE_P(Mtus, MtuDiscovery,
                         ::testing::Values(576u, 1376u, 1400u, 1476u, 1492u,
                                           1500u));

TEST(MtuDiscovery, DarkHostIsUnresponsive) {
  EngineRig rig;
  std::vector<MtuProbeResult> results;
  MtuProbeConfig config;
  config.timeout = sim::msec(500);
  IcmpMtuModule module(config, [&](const MtuProbeResult& r) { results.push_back(r); });
  TargetGenerator targets({*net::Cidr::parse("10.7.0.1/32")}, {}, 3);
  ScanEngine engine(rig.network, EngineConfig{}, std::move(targets), module);
  engine.start();
  while (!engine.done() && rig.loop.step()) {
  }
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].responded);
  EXPECT_EQ(results[0].path_mtu, 0u);
  EXPECT_EQ(engine.stats().targets_finished, 1u);
}

// ------------------------------------------------------- SYN cookies -----

TEST(SynCookie, RoundTripsAcrossTheIdentitySpace) {
  SynCookieCodec codec(0x5eed);
  std::mt19937_64 rng(99);
  std::set<std::uint32_t> isns;
  for (int trial = 0; trial < 10'000; ++trial) {
    CookieIdentity identity;
    identity.index = rng() % kMaxCookieIndex;
    identity.probe = static_cast<std::uint8_t>(rng() % kMaxCookieProbe);
    identity.epoch = static_cast<std::uint8_t>(rng() % kMaxCookieEpoch);
    const net::IPv4Address target{static_cast<std::uint32_t>(rng())};
    const std::uint32_t cookie = codec.pack(identity, target);
    isns.insert(cookie);
    CookieIdentity recovered;
    ASSERT_TRUE(codec.unpack(cookie, target, recovered)) << trial;
    ASSERT_EQ(recovered, identity) << trial;
  }
  // The Feistel layer makes on-the-wire ISNs look shuffled: a bare counter
  // would collide here only by birthday accident, but it would be ordered.
  EXPECT_GT(isns.size(), 9'900u);
}

TEST(SynCookie, RejectsForgedStaleAndMisattributedCookies) {
  SynCookieCodec codec(0x5eed);
  SynCookieCodec other_scan(0x5eee);
  std::mt19937_64 rng(100);
  int bitflip_accepted = 0;
  int wrong_source_accepted = 0;
  int wrong_key_accepted = 0;
  constexpr int kTrials = 4'000;
  for (int trial = 0; trial < kTrials; ++trial) {
    CookieIdentity identity;
    identity.index = rng() % kMaxCookieIndex;
    const net::IPv4Address target{static_cast<std::uint32_t>(rng())};
    const std::uint32_t cookie = codec.pack(identity, target);
    CookieIdentity out;
    // A host echoing a corrupted ack: flip one random bit.
    const std::uint32_t flipped = cookie ^ (std::uint32_t{1} << (rng() % 32));
    if (codec.unpack(flipped, target, out)) ++bitflip_accepted;
    // A host attributing someone else's cookie to itself.
    const net::IPv4Address imposter{static_cast<std::uint32_t>(rng())};
    if (codec.unpack(cookie, imposter, out)) ++wrong_source_accepted;
    // A stale cookie from a different scan (different key).
    if (other_scan.unpack(cookie, target, out)) ++wrong_key_accepted;
  }
  // The MAC is 4 bits, so forgeries slip through at ~1/16; what matters is
  // that they are rejected at the MAC's design rate, not accepted freely.
  EXPECT_LT(bitflip_accepted, kTrials / 8);
  EXPECT_LT(wrong_source_accepted, kTrials / 8);
  EXPECT_LT(wrong_key_accepted, kTrials / 8);
}

TEST(SynCookie, DeterministicAcrossCodecInstances) {
  SynCookieCodec a(42), b(42);
  CookieIdentity identity;
  identity.index = 123'456;
  identity.probe = 1;
  identity.epoch = 3;
  const net::IPv4Address target{10, 20, 30, 40};
  EXPECT_EQ(a.pack(identity, target), b.pack(identity, target));
}

// ----------------------------------------- incremental checksum patch ----

TEST(ChecksumUpdate, PatchedTemplateMatchesFromScratchEncoding) {
  // The stateless sweep's whole transmit path: encode once with
  // dst/seq/ack = 0, then patch per target with RFC 1624 updates. The
  // patched frame must be bit-identical to encoding the real values —
  // otherwise receivers that verify by recomputation would drop probes.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 2'000; ++trial) {
    net::TcpSegment base;
    base.ip.src = net::IPv4Address{192, 0, 2, 2};
    base.ip.dst = net::IPv4Address{std::uint32_t{0}};
    base.ip.ttl = 64;
    base.tcp.src_port = 61337;
    base.tcp.dst_port = 80;
    base.tcp.seq = 0;
    base.tcp.ack = 0;
    base.tcp.flags = net::kAck | net::kPsh;
    base.tcp.window = 65535;
    base.payload = net::to_bytes("GET / HTTP/1.0\r\n\r\n");
    net::Bytes patched = net::encode(base);

    const std::uint32_t dst = static_cast<std::uint32_t>(rng());
    const std::uint32_t seq = static_cast<std::uint32_t>(rng());
    const std::uint32_t ack = static_cast<std::uint32_t>(rng());
    const auto read16 = [&](std::size_t at) {
      return static_cast<std::uint16_t>((patched[at] << 8) | patched[at + 1]);
    };
    const auto write16 = [&](std::size_t at, std::uint16_t value) {
      patched[at] = static_cast<std::uint8_t>(value >> 8);
      patched[at + 1] = static_cast<std::uint8_t>(value);
    };
    const auto write32 = [&](std::size_t at, std::uint32_t value) {
      write16(at, static_cast<std::uint16_t>(value >> 16));
      write16(at + 2, static_cast<std::uint16_t>(value));
    };
    write16(10, net::checksum_update32(read16(10), 0, dst));  // IP checksum
    std::uint16_t tcp = net::checksum_update32(read16(36), 0, dst);
    tcp = net::checksum_update32(tcp, 0, seq);
    tcp = net::checksum_update32(tcp, 0, ack);
    write32(16, dst);
    write32(24, seq);
    write32(28, ack);
    write16(36, tcp);

    net::TcpSegment real = base;
    real.ip.dst = net::IPv4Address{dst};
    real.tcp.seq = seq;
    real.tcp.ack = ack;
    ASSERT_EQ(patched, net::encode(real)) << "trial " << trial;
  }
}

TEST(ChecksumUpdate, NoopUpdateIsIdentity) {
  // The sweep patches the ack field unconditionally, relying on
  // update(c, 0, 0) == c so templates whose ack stays zero need no branch.
  // 0xFFFF is excluded: a canonical RFC 1071 encoder never transmits it
  // (the complement of a ones'-complement fold of a non-empty packet), and
  // the RFC 1624 update maps it to the class representative 0x0000.
  for (std::uint32_t c = 0; c < 0xFFFF; c += 257) {
    const auto checksum = static_cast<std::uint16_t>(c);
    EXPECT_EQ(net::checksum_update16(checksum, 0, 0), checksum);
    EXPECT_EQ(net::checksum_update32(checksum, 0, 0), checksum);
    EXPECT_EQ(net::checksum_update16(checksum, 0x1234, 0x1234), checksum);
  }
}

// --------------------------------------------------- stateless sweep -----

struct SweepRig : EngineRig {
  std::vector<SweepEvent> events;

  SweepStats sweep(net::Cidr space, SweepConfig config = {},
                   std::function<void(StatelessSweep&)> tweak = {}) {
    StatelessSweep sweep(network, config, TargetGenerator({space}, {}, config.seed),
                         [&](const SweepEvent& event) { events.push_back(event); });
    if (tweak) tweak(sweep);
    sweep.start();
    while (!sweep.done() && loop.step()) {
    }
    EXPECT_TRUE(sweep.done());
    EXPECT_EQ(sweep.live_sessions(), 0u);
    return sweep.stats();
  }

  [[nodiscard]] int count(SweepEventKind kind) const {
    return static_cast<int>(std::count_if(
        events.begin(), events.end(),
        [kind](const SweepEvent& e) { return e.kind == kind; }));
  }
};

TEST(StatelessSweep, ClassifiesOpenClosedAndDarkAddresses) {
  SweepRig rig;
  // 10.2.0.0/28: .0-.4 open HTTP, .5-.9 up with port 80 closed, rest dark.
  for (int i = 0; i < 5; ++i) rig.add_host(net::IPv4Address(10, 2, 0, static_cast<std::uint8_t>(i)), true);
  for (int i = 5; i < 10; ++i) rig.add_host(net::IPv4Address(10, 2, 0, static_cast<std::uint8_t>(i)), false);

  const SweepStats stats = rig.sweep(*net::Cidr::parse("10.2.0.0/28"));
  EXPECT_EQ(stats.targets_probed, 16u);
  EXPECT_EQ(stats.responsive, 5u);
  EXPECT_EQ(stats.closed, 5u);
  EXPECT_EQ(stats.banners, 5u);
  EXPECT_EQ(rig.count(SweepEventKind::Responsive), 5);
  EXPECT_EQ(rig.count(SweepEventKind::Closed), 5);
  EXPECT_EQ(rig.count(SweepEventKind::Banner), 5);

  // Responsive events carry the SYN-ACK's advertised window and MSS; the
  // banner is the first flight's first bytes — an HTTP status line.
  for (const SweepEvent& event : rig.events) {
    if (event.kind == SweepEventKind::Responsive) {
      EXPECT_GT(event.window, 0u);
      EXPECT_GT(event.mss, 0u);
    }
    if (event.kind == SweepEventKind::Banner) {
      ASSERT_GE(event.banner_length, 8u);
      const std::string prefix(event.banner.begin(), event.banner.begin() + 8);
      EXPECT_EQ(prefix, "HTTP/1.1");
    }
  }
}

TEST(StatelessSweep, DuplicatedRepliesAreSuppressedNotDoubleCounted) {
  SweepRig rig;
  sim::PathConfig path;
  path.latency = sim::msec(5);
  path.duplicate_rate = 1.0;  // every packet arrives twice
  rig.network.set_default_path(path);
  rig.add_host(net::IPv4Address(10, 2, 1, 1), true);

  const SweepStats stats = rig.sweep(*net::Cidr::parse("10.2.1.1/32"));
  EXPECT_EQ(stats.responsive, 1u);
  EXPECT_EQ(stats.banners, 1u);
  EXPECT_GT(stats.duplicate_events, 0u);
  EXPECT_EQ(rig.count(SweepEventKind::Responsive), 1);
  EXPECT_EQ(rig.count(SweepEventKind::Banner), 1);
}

TEST(StatelessSweep, ForgedAcksAreRejectedByCookieValidation) {
  SweepRig rig;
  rig.add_host(net::IPv4Address(10, 2, 2, 1), true);
  // While the sweep sits in its answer window, an off-path attacker blasts
  // segments whose acks never went through pack(): a forged SYN-ACK, a
  // forged closed-port RST, and a forged data segment. All three must die
  // at cookie validation without producing events or response packets.
  rig.loop.schedule(sim::msec(200), [&] {
    auto blast = [&](std::uint8_t flags, std::string_view payload) {
      net::TcpSegment segment;
      segment.ip.src = net::IPv4Address{10, 9, 9, 9};
      segment.ip.dst = net::IPv4Address{192, 0, 2, 2};
      segment.tcp.src_port = 80;
      segment.tcp.dst_port = 61337;
      segment.tcp.seq = 1;
      segment.tcp.ack = 0xdeadbeef;
      segment.tcp.flags = flags;
      segment.payload = net::to_bytes(payload);
      net::PacketBuf buf = rig.network.pool().acquire();
      buf.bytes() = net::encode(segment);
      rig.network.send(std::move(buf));
    };
    blast(net::kSyn | net::kAck, {});
    blast(net::kRst | net::kAck, {});
    blast(net::kAck | net::kPsh, "FORGED");
  });
  const SweepStats stats = rig.sweep(*net::Cidr::parse("10.2.2.1/32"));
  EXPECT_GE(stats.cookie_rejected, 3u);
  EXPECT_EQ(stats.responsive, 1u);  // the honest host still classified
  EXPECT_EQ(stats.banners, 1u);
  EXPECT_EQ(rig.count(SweepEventKind::Closed), 0);
}

TEST(StatelessSweep, ThrottleParksPacingUntilWake) {
  SweepRig rig;
  for (int i = 0; i < 4; ++i) rig.add_host(net::IPv4Address(10, 2, 3, static_cast<std::uint8_t>(i)), true);
  bool throttled = true;
  StatelessSweep sweep(rig.network, SweepConfig{},
                       TargetGenerator({*net::Cidr::parse("10.2.3.0/30")}, {}, 7),
                       [&](const SweepEvent& event) { rig.events.push_back(event); });
  sweep.set_throttle([&] { return throttled; });
  sweep.start();
  while (rig.loop.step()) {
  }
  // Backpressure from the first pace() call onward: one SYN at most went
  // out (the throttle is consulted before each send).
  EXPECT_FALSE(sweep.done());
  EXPECT_LE(sweep.stats().targets_probed, 1u);

  throttled = false;
  sweep.wake();
  while (!sweep.done() && rig.loop.step()) {
  }
  EXPECT_TRUE(sweep.done());
  EXPECT_EQ(sweep.stats().targets_probed, 4u);
  EXPECT_EQ(sweep.stats().responsive, 4u);
}

TEST(StatelessSweep, DarkSpaceFinishesViaCooldownAndSignalsCompletion) {
  SweepRig rig;
  SweepConfig config;
  config.cooldown = sim::sec(2);
  bool completed = false;
  const SweepStats stats =
      rig.sweep(*net::Cidr::parse("10.2.4.0/28"), config,
                [&](StatelessSweep& sweep) {
                  sweep.set_on_complete([&] { completed = true; });
                });
  EXPECT_TRUE(completed);
  EXPECT_EQ(stats.targets_probed, 16u);
  EXPECT_EQ(stats.packets_sent, 16u);  // one SYN each, nothing to answer
  EXPECT_EQ(stats.responsive, 0u);
  EXPECT_EQ(stats.packets_received, 0u);
  EXPECT_GE(stats.finished_at - stats.started_at, config.cooldown);
}

}  // namespace
}  // namespace iwscan::scan
