// HTTP message parsing and origin-server behaviour (§3.2's counterparty).
#include <gtest/gtest.h>

#include "httpd/http_message.hpp"
#include "httpd/http_server.hpp"
#include "netsim/network.hpp"
#include "tcpstack/host.hpp"
#include "tcpstack/seq.hpp"

namespace iwscan::http {
namespace {

// ------------------------------------------------------ RequestParser ----

TEST(RequestParser, ParsesSimpleGet) {
  RequestParser parser;
  const auto status = parser.feed(
      "GET /index.html HTTP/1.1\r\nHost: example.com\r\n"
      "Connection: close\r\n\r\n");
  ASSERT_EQ(status, RequestParser::Status::Complete);
  const auto& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/index.html");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.header("host"), "example.com");
  EXPECT_TRUE(request.wants_close());
}

TEST(RequestParser, IncrementalFeeding) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("GET / HT"), RequestParser::Status::NeedMore);
  EXPECT_EQ(parser.feed("TP/1.1\r\nHost: h"), RequestParser::Status::NeedMore);
  EXPECT_EQ(parser.feed("\r\n\r\n"), RequestParser::Status::Complete);
  EXPECT_EQ(parser.request().header("Host"), "h");
}

TEST(RequestParser, InvalidRequests) {
  {
    RequestParser parser;
    EXPECT_EQ(parser.feed("GARBAGE\r\n\r\n"), RequestParser::Status::Invalid);
  }
  {
    RequestParser parser;
    EXPECT_EQ(parser.feed("GET /\r\n\r\n"), RequestParser::Status::Invalid);
  }
  {
    RequestParser parser;
    EXPECT_EQ(parser.feed("GET / FTP/1.0\r\n\r\n"), RequestParser::Status::Invalid);
  }
  {
    RequestParser parser;
    EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
              RequestParser::Status::Invalid);
  }
}

TEST(RequestParser, HeaderFloodIsRejected) {
  RequestParser parser;
  std::string flood = "GET / HTTP/1.1\r\n";
  while (flood.size() < 70'000) flood += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaa\r\n";
  EXPECT_EQ(parser.feed(flood), RequestParser::Status::Invalid);
}

TEST(RequestParser, ResetAllowsReuse) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET /a HTTP/1.1\r\n\r\n"), RequestParser::Status::Complete);
  parser.reset();
  ASSERT_EQ(parser.feed("GET /b HTTP/1.1\r\n\r\n"), RequestParser::Status::Complete);
  EXPECT_EQ(parser.request().target, "/b");
}

// ------------------------------------------------------- HttpResponse ----

TEST(HttpResponse, SerializeComputesContentLength) {
  HttpResponse response;
  response.status = 404;
  response.reason = "Not Found";
  response.headers.push_back({"Server", "testd"});
  response.body = "12345";
  const std::string wire = response.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\n12345"));
}

TEST(ParseResponseHead, RoundTrip) {
  HttpResponse response;
  response.status = 301;
  response.reason = "Moved Permanently";
  response.headers.push_back({"Location", "http://www.example.net/"});
  response.body = "moved";
  const std::string wire = response.serialize();

  const auto head = parse_response_head(wire);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->status, 301);
  EXPECT_EQ(head->reason, "Moved Permanently");
  EXPECT_EQ(head->header("location"), "http://www.example.net/");
  EXPECT_EQ(wire.substr(head->header_bytes), "moved");
}

TEST(ParseResponseHead, RejectsPartialAndGarbage) {
  EXPECT_FALSE(parse_response_head("HTTP/1.1 200 OK\r\nServer: x\r\n"));
  EXPECT_FALSE(parse_response_head("SSH-2.0-OpenSSH\r\n\r\n"));
  EXPECT_FALSE(parse_response_head("HTTP/1.1 abc OK\r\n\r\n"));
  EXPECT_FALSE(parse_response_head(""));
}

TEST(ParseResponseHead, RejectsOutOfRangeStatus) {
  // from_chars alone would happily parse these; the status must be the
  // three-digit code RFC 9112 requires.
  EXPECT_FALSE(parse_response_head("HTTP/1.1 -5 Bad\r\n\r\n"));
  EXPECT_FALSE(parse_response_head("HTTP/1.1 99 Low\r\n\r\n"));
  EXPECT_FALSE(parse_response_head("HTTP/1.1 12345 High\r\n\r\n"));
  EXPECT_TRUE(parse_response_head("HTTP/1.1 100 Continue\r\n\r\n"));
  EXPECT_TRUE(parse_response_head("HTTP/1.1 999 Max\r\n\r\n"));
}

TEST(ParseResponseHead, ContentLength) {
  const auto head = parse_response_head(
      "HTTP/1.1 200 OK\r\nContent-Length:  1234 \r\n\r\n");
  ASSERT_TRUE(head);
  EXPECT_EQ(head->content_length(), 1234u);

  // Absent header.
  EXPECT_FALSE(
      parse_response_head("HTTP/1.1 200 OK\r\n\r\n")->content_length().has_value());
  // Hostile responders announce absurd lengths: a value that overflows 64
  // bits must come back as nullopt, never as a wrapped small number.
  EXPECT_FALSE(parse_response_head(
                   "HTTP/1.1 200 OK\r\nContent-Length: 99999999999999999999\r\n\r\n")
                   ->content_length()
                   .has_value());
  // Non-numeric.
  EXPECT_FALSE(parse_response_head("HTTP/1.1 200 OK\r\nContent-Length: ten\r\n\r\n")
                   ->content_length()
                   .has_value());
  EXPECT_FALSE(parse_response_head("HTTP/1.1 200 OK\r\nContent-Length: 12kb\r\n\r\n")
                   ->content_length()
                   .has_value());
}

TEST(RequestParser, InvalidStateLatches) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("NOT-HTTP\r\n\r\n"), RequestParser::Status::Invalid);
  // A valid request on the same connection must not resurrect the parser…
  EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\n\r\n"), RequestParser::Status::Invalid);
  // …until the server explicitly resets it.
  parser.reset();
  EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\n\r\n"), RequestParser::Status::Complete);
}

TEST(ParseLocation, Variants) {
  auto parts = parse_location("http://www.example.net/path/x");
  ASSERT_TRUE(parts);
  EXPECT_EQ(parts->host, "www.example.net");
  EXPECT_EQ(parts->path, "/path/x");

  parts = parse_location("https://example.net");
  ASSERT_TRUE(parts);
  EXPECT_EQ(parts->host, "example.net");
  EXPECT_EQ(parts->path, "/");

  parts = parse_location("http://example.net:8080/a");
  ASSERT_TRUE(parts);
  EXPECT_EQ(parts->host, "example.net");
  EXPECT_EQ(parts->path, "/a");

  parts = parse_location("/relative/only");
  ASSERT_TRUE(parts);
  EXPECT_TRUE(parts->host.empty());
  EXPECT_EQ(parts->path, "/relative/only");

  EXPECT_FALSE(parse_location(""));
  EXPECT_FALSE(parse_location("ftp-garbage"));
  EXPECT_FALSE(parse_location("http:///nohost"));
}

// -------------------------------------------- server behaviour harness ---

/// Full-ACK client: completes the handshake, sends one request, ACKs every
/// data segment (unconstrained transfer), and reassembles the response.
class FetchClient final : public sim::Endpoint {
 public:
  FetchClient(sim::Network& network, net::IPv4Address self, net::IPv4Address server)
      : network_(network), self_(self), server_(server) {
    network_.attach(self_, this);
  }
  ~FetchClient() override { network_.detach(self_); }

  void fetch(const std::string& request) {
    request_ = request;
    send(isn_, 0, net::kSyn, std::optional<std::uint16_t>(1460));
  }

  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (!datagram) return;
    const auto* segment = std::get_if<net::TcpSegment>(&*datagram);
    if (!segment) return;
    if (segment->tcp.has(net::kRst)) {
      reset = true;
      return;
    }
    if (segment->tcp.has(net::kSyn) && segment->tcp.has(net::kAck)) {
      rcv_nxt_ = segment->tcp.seq + 1;
      send(isn_ + 1, rcv_nxt_, net::kAck | net::kPsh, std::nullopt,
           net::to_bytes(request_));
      return;
    }
    if (!segment->payload.empty() && segment->tcp.seq == rcv_nxt_) {
      body.insert(body.end(), segment->payload.begin(), segment->payload.end());
      rcv_nxt_ += static_cast<std::uint32_t>(segment->payload.size());
    }
    if (segment->tcp.has(net::kFin) &&
        segment->tcp.seq + segment->payload.size() == rcv_nxt_) {
      rcv_nxt_ += 1;
      fin = true;
    }
    send(isn_ + 1 + static_cast<std::uint32_t>(request_.size()), rcv_nxt_,
         net::kAck, std::nullopt);
  }

  net::Bytes body;
  bool fin = false;
  bool reset = false;

 private:
  void send(std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
            std::optional<std::uint16_t> mss, net::Bytes payload = {}) {
    net::TcpSegment segment;
    segment.ip.src = self_;
    segment.ip.dst = server_;
    segment.tcp.src_port = 43210;
    segment.tcp.dst_port = 80;
    segment.tcp.seq = seq;
    segment.tcp.ack = ack;
    segment.tcp.flags = flags;
    segment.tcp.window = 65535;
    if (mss) segment.tcp.options.push_back(net::MssOption{*mss});
    segment.payload = std::move(payload);
    network_.send(net::encode(segment));
  }

  sim::Network& network_;
  net::IPv4Address self_;
  net::IPv4Address server_;
  std::uint32_t isn_ = 9000;
  std::uint32_t rcv_nxt_ = 0;
  std::string request_;
};

struct ServerRig {
  sim::EventLoop loop;
  sim::Network network{loop, 3};
  std::unique_ptr<tcp::TcpHost> host;
  std::unique_ptr<FetchClient> client;
  const net::IPv4Address server_ip{10, 0, 0, 1};

  explicit ServerRig(WebConfig web) {
    tcp::StackConfig stack;
    stack.iw = tcp::IwConfig::segments_of(10);
    host = std::make_unique<tcp::TcpHost>(network, server_ip, stack, 1);
    host->listen(80, HttpServerApp::factory(std::move(web)));
    network.attach(server_ip, host.get());
    client = std::make_unique<FetchClient>(network, net::IPv4Address{192, 0, 2, 5},
                                           server_ip);
  }

  std::string get(const std::string& target, const std::string& host_header) {
    client->fetch("GET " + target + " HTTP/1.1\r\nHost: " + host_header +
                  "\r\nConnection: close\r\n\r\n");
    loop.run_until(loop.now() + sim::sec(5));
    return std::string(client->body.begin(), client->body.end());
  }
};

TEST(HttpServer, ServesPageOfConfiguredSize) {
  WebConfig web;
  web.root = RootBehavior::Page;
  web.page_size = 3000;
  ServerRig rig(web);
  const std::string response = rig.get("/", "10.0.0.1");
  const auto head = parse_response_head(response);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(response.size() - head->header_bytes, 3000u);
  EXPECT_TRUE(rig.client->fin) << "Connection: close must yield a FIN";
}

TEST(HttpServer, RedirectsIpHostToCanonicalName) {
  WebConfig web;
  web.root = RootBehavior::RedirectToName;
  web.canonical_name = "www.canonical.test";
  ServerRig rig(web);
  const std::string response = rig.get("/", "10.0.0.1");
  const auto head = parse_response_head(response);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->status, 301);
  EXPECT_EQ(head->header("Location"), "http://www.canonical.test/");
}

TEST(HttpServer, NamedHostGetsRealPage) {
  WebConfig web;
  web.root = RootBehavior::RedirectToName;
  web.canonical_name = "www.canonical.test";
  web.redirected_page_size = 5000;
  ServerRig rig(web);
  const std::string response = rig.get("/", "www.canonical.test");
  const auto head = parse_response_head(response);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(response.size() - head->header_bytes, 5000u);
}

TEST(HttpServer, NotFoundEchoGrowsWithUri) {
  WebConfig web;
  web.root = RootBehavior::NotFoundEcho;
  ServerRig rig(web);
  const std::string long_uri = "/" + std::string(1200, 'z');
  const std::string response = rig.get(long_uri, "10.0.0.1");
  const auto head = parse_response_head(response);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->status, 404);
  EXPECT_NE(response.find(long_uri), std::string::npos) << "URI must be echoed";
  EXPECT_GT(response.size(), 1200u);
}

TEST(HttpServer, NotFoundPlainDoesNotEcho) {
  WebConfig web;
  web.root = RootBehavior::NotFoundPlain;
  ServerRig rig(web);
  const std::string long_uri = "/" + std::string(500, 'q');
  const std::string response = rig.get(long_uri, "10.0.0.1");
  const auto head = parse_response_head(response);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->status, 404);
  EXPECT_EQ(response.find(std::string(100, 'q')), std::string::npos);
  EXPECT_LT(response.size(), 300u);
}

TEST(HttpServer, EmptyReplyHasZeroLengthBody) {
  WebConfig web;
  web.root = RootBehavior::EmptyReply;
  ServerRig rig(web);
  const std::string response = rig.get("/", "10.0.0.1");
  const auto head = parse_response_head(response);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(response.size(), head->header_bytes);
}

TEST(HttpServer, RawBannerIsNotHttp) {
  WebConfig web;
  web.root = RootBehavior::RawBanner;
  web.page_size = 40;
  ServerRig rig(web);
  const std::string response = rig.get("/", "10.0.0.1");
  EXPECT_EQ(response.size(), 40u);
  EXPECT_FALSE(parse_response_head(response).has_value());
  EXPECT_TRUE(rig.client->fin);
}

TEST(HttpServer, SilentServerSendsNothing) {
  WebConfig web;
  web.root = RootBehavior::Silent;
  ServerRig rig(web);
  const std::string response = rig.get("/", "10.0.0.1");
  EXPECT_TRUE(response.empty());
  EXPECT_FALSE(rig.client->fin);
}

TEST(HttpServer, MalformedRequestIsReset) {
  WebConfig web;
  web.root = RootBehavior::Page;
  ServerRig rig(web);
  rig.client->fetch("NONSENSE\r\n\r\n");
  rig.loop.run_until(sim::sec(2));
  EXPECT_TRUE(rig.client->reset);
}

TEST(HttpServer, DelayedResponseStillArrives) {
  WebConfig web;
  web.root = RootBehavior::Page;
  web.page_size = 1200;
  web.processing_delay = sim::msec(150);
  ServerRig rig(web);
  const std::string response = rig.get("/", "10.0.0.1");
  const auto head = parse_response_head(response);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(response.size() - head->header_bytes, 1200u);
}

TEST(HttpServer, RequestSplitAcrossSegmentsIsParsed) {
  WebConfig web;
  web.root = RootBehavior::Page;
  web.page_size = 500;
  ServerRig rig(web);
  // fetch() sends the whole request in one segment; emulate splitting by
  // issuing the request without the final CRLF first, then completing it.
  rig.client->fetch("GET / HTTP/1.1\r\nHost: 10.0.0.1\r\nConnection: close");
  rig.loop.run_until(sim::msec(300));
  EXPECT_TRUE(rig.client->body.empty()) << "no response before the blank line";
  // (Completing the split request would need a stateful client; the parser
  // path itself is covered by RequestParser.IncrementalFeeding.)
}

TEST(HttpServer, ServerHeaderIsConfigurable) {
  WebConfig web;
  web.root = RootBehavior::Page;
  web.server_header = "GHost";
  ServerRig rig(web);
  const std::string response = rig.get("/", "10.0.0.1");
  const auto head = parse_response_head(response);
  ASSERT_TRUE(head);
  EXPECT_EQ(head->header("Server"), "GHost");
}

}  // namespace
}  // namespace iwscan::http
