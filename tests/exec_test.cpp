// The parallel scan executor: channel/pool primitives, shard planning,
// stats merging, and the headline invariant — a sharded scan is
// byte-identical to the single-shard scan for any shard count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "analysis/scan_runner.hpp"
#include "exec/channel.hpp"
#include "exec/parallel_runner.hpp"
#include "exec/shard_plan.hpp"
#include "exec/thread_pool.hpp"
#include "inetmodel/internet.hpp"
#include "testbed.hpp"

namespace iwscan::exec {
namespace {

// ------------------------------------------------------------- channel ----

TEST(BoundedChannel, FifoWithinOneThread) {
  BoundedChannel<int> channel(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(channel.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto value = channel.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
}

TEST(BoundedChannel, CloseDrainsQueuedItemsThenReportsExhaustion) {
  BoundedChannel<int> channel(8);
  EXPECT_TRUE(channel.push(1));
  EXPECT_TRUE(channel.push(2));
  channel.close();
  EXPECT_FALSE(channel.push(3));  // producers see the closed channel
  EXPECT_EQ(channel.pop(), 1);
  EXPECT_EQ(channel.pop(), 2);
  EXPECT_EQ(channel.pop(), std::nullopt);
}

TEST(BoundedChannel, BoundedCapacityBlocksProducerUntilConsumed) {
  BoundedChannel<int> channel(2);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(channel.push(i));
      produced.fetch_add(1);
    }
  });
  int expected = 0;
  while (expected < 100) {
    const auto value = channel.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, expected);  // single producer keeps FIFO order
    ++expected;
  }
  producer.join();
  EXPECT_EQ(produced.load(), 100);
}

TEST(BoundedChannel, ManyProducersDeliverEverything) {
  BoundedChannel<int> channel(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.push(p * kPerProducer + i));
      }
    });
  }
  std::set<int> received;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto value = channel.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_TRUE(received.insert(*value).second);
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(received.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

// --------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  for (int i = 0; i < 10; ++i) pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, ZeroRequestedThreadsStillRuns) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------- shard plan ----

TEST(ShardPlan, DividesRateAndSessionBudgetEvenly) {
  const ShardPlan plan = ShardPlan::make(4, 100'000, 20'000);
  ASSERT_EQ(plan.shards.size(), 4u);
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(plan.shards[k].shard, k);
    EXPECT_EQ(plan.shards[k].total_shards, 4u);
    EXPECT_DOUBLE_EQ(plan.shards[k].rate_pps, 25'000.0);
    EXPECT_EQ(plan.shards[k].max_outstanding, 5'000u);
  }
}

TEST(ShardPlan, ClampsDegenerateInputs) {
  const ShardPlan zero = ShardPlan::make(0, 1000, 100);
  ASSERT_EQ(zero.shards.size(), 1u);
  // More shards than sessions: every worker still gets one session slot.
  const ShardPlan thin = ShardPlan::make(8, 1000, 4);
  for (const ShardSpec& spec : thin.shards) {
    EXPECT_EQ(spec.max_outstanding, 1u);
  }
}

// --------------------------------------------------------- EngineStats ----

TEST(EngineStats, AccumulationSumsCountersAndTakesTimeEnvelope) {
  scan::EngineStats a;
  a.targets_started = 10;
  a.targets_finished = 9;
  a.packets_sent = 100;
  a.packets_received = 80;
  a.stray_packets = 1;
  a.started_at = sim::msec(5);
  a.finished_at = sim::msec(50);

  scan::EngineStats b;
  b.targets_started = 4;
  b.targets_finished = 4;
  b.packets_sent = 40;
  b.packets_received = 39;
  b.stray_packets = 2;
  b.started_at = sim::msec(2);
  b.finished_at = sim::msec(30);

  a += b;
  EXPECT_EQ(a.targets_started, 14u);
  EXPECT_EQ(a.targets_finished, 13u);
  EXPECT_EQ(a.packets_sent, 140u);
  EXPECT_EQ(a.packets_received, 119u);
  EXPECT_EQ(a.stray_packets, 3u);
  EXPECT_EQ(a.started_at, sim::msec(2));
  EXPECT_EQ(a.finished_at, sim::msec(50));
}

// ------------------------------------------------- sharded scan runner ----

// A fresh small world per run: byte-identity across shard counts is
// guaranteed for identically-seeded worlds (a reused loop would have
// advanced its per-flow impairment streams).
struct FreshWorld {
  sim::EventLoop loop;
  sim::Network network{loop, 123};
  model::InternetModel internet;

  FreshWorld() : internet(network, make_config()) { internet.install(); }

  static model::ModelConfig make_config() {
    model::ModelConfig config;
    config.scale_log2 = 12;  // 4 Ki addresses — the smallest supported world
    return config;
  }
};

analysis::ScanOutput scan_with_shards(std::uint64_t shards) {
  FreshWorld world;
  analysis::ScanOptions options;
  options.protocol = core::ProbeProtocol::Http;
  options.rate_pps = 40'000;
  options.scan_seed = 7;
  options.shards = shards;
  return analysis::run_iw_scan(world.network, world.internet, options);
}

TEST(ParallelScanRunner, ShardedScanIsByteIdenticalToSingleShard) {
  const analysis::ScanOutput baseline = scan_with_shards(1);
  ASSERT_FALSE(baseline.records.empty());

  for (const std::uint64_t shards : {2u, 4u, 8u}) {
    const analysis::ScanOutput sharded = scan_with_shards(shards);
    // Records: identical content in identical order (field-wise equality).
    ASSERT_EQ(sharded.records.size(), baseline.records.size()) << shards;
    for (std::size_t i = 0; i < baseline.records.size(); ++i) {
      EXPECT_TRUE(sharded.records[i] == baseline.records[i])
          << "record " << i << " diverges at shards=" << shards << " (ip "
          << baseline.records[i].ip.to_string() << ")";
    }
    // Engine counters: summed shard stats equal the single-shard stats.
    EXPECT_EQ(sharded.engine.targets_started, baseline.engine.targets_started);
    EXPECT_EQ(sharded.engine.targets_finished, baseline.engine.targets_finished);
    EXPECT_EQ(sharded.engine.packets_sent, baseline.engine.packets_sent);
    EXPECT_EQ(sharded.engine.packets_received, baseline.engine.packets_received);
    EXPECT_EQ(sharded.engine.stray_packets, baseline.engine.stray_packets);
    EXPECT_EQ(sharded.address_space, baseline.address_space);
  }
}

TEST(ParallelScanRunner, ImpairedPathsKeepShardedByteIdentity) {
  // Per-flow impairment RNGs are keyed by (network seed, flow), so loss,
  // reordering and duplication replay identically in every shard's world —
  // the identity must survive a meaningfully lossy Internet.
  auto run = [](std::uint64_t shards) {
    sim::EventLoop loop;
    sim::Network network(loop, 123);
    model::ModelConfig config;
    config.scale_log2 = 12;
    config.loss_rate = 0.02;
    config.reorder_rate = 0.01;
    config.duplicate_rate = 0.005;
    model::InternetModel internet(network, config);
    internet.install();
    analysis::ScanOptions options;
    options.rate_pps = 40'000;
    options.scan_seed = test::env_scan_seed(7);
    options.shards = shards;
    return analysis::run_iw_scan(network, internet, options);
  };
  const analysis::ScanOutput baseline = run(1);
  ASSERT_FALSE(baseline.records.empty());
  for (const std::uint64_t shards : {2u, 4u}) {
    const analysis::ScanOutput sharded = run(shards);
    ASSERT_EQ(sharded.records.size(), baseline.records.size()) << shards;
    for (std::size_t i = 0; i < baseline.records.size(); ++i) {
      ASSERT_TRUE(sharded.records[i] == baseline.records[i])
          << "record " << i << " diverges at shards=" << shards << " (ip "
          << baseline.records[i].ip.to_string() << ")";
    }
  }
}

TEST(ParallelScanRunner, AdversarialHostsKeepShardedByteIdentity) {
  // Hostile stacks (tarpits, slowloris, RST injectors…) respond only to
  // their own flow's clock, so mixing them in must not break the merge.
  auto run = [](std::uint64_t shards) {
    sim::EventLoop loop;
    sim::Network network(loop, 123);
    model::ModelConfig config;
    config.scale_log2 = 12;
    config.adversarial_fraction = 0.15;
    model::InternetModel internet(network, config);
    internet.install();
    analysis::ScanOptions options;
    options.rate_pps = 40'000;
    options.scan_seed = test::env_scan_seed(7);
    options.shards = shards;
    return analysis::run_iw_scan(network, internet, options);
  };
  const analysis::ScanOutput baseline = run(1);
  ASSERT_FALSE(baseline.records.empty());
  bool anomaly_seen = false;
  for (const core::HostScanRecord& record : baseline.records) {
    if (record.anomaly != core::ProbeAnomaly::None) anomaly_seen = true;
  }
  EXPECT_TRUE(anomaly_seen);  // the mix actually contains hostile hosts
  for (const std::uint64_t shards : {2u, 4u}) {
    const analysis::ScanOutput sharded = run(shards);
    ASSERT_EQ(sharded.records.size(), baseline.records.size()) << shards;
    for (std::size_t i = 0; i < baseline.records.size(); ++i) {
      ASSERT_TRUE(sharded.records[i] == baseline.records[i])
          << "record " << i << " diverges at shards=" << shards << " (ip "
          << baseline.records[i].ip.to_string() << ")";
    }
    EXPECT_EQ(sharded.engine.sessions_killed_wall,
              baseline.engine.sessions_killed_wall);
  }
}

TEST(ParallelScanRunner, SampledShardedScanMatchesSingleShard) {
  auto run = [](std::uint64_t shards) {
    FreshWorld world;
    analysis::ScanOptions options;
    options.rate_pps = 40'000;
    options.scan_seed = 11;
    options.sample_fraction = 0.5;
    options.shards = shards;
    return analysis::run_iw_scan(world.network, world.internet, options);
  };
  const analysis::ScanOutput baseline = run(1);
  const analysis::ScanOutput sharded = run(3);
  ASSERT_EQ(sharded.records.size(), baseline.records.size());
  for (std::size_t i = 0; i < baseline.records.size(); ++i) {
    EXPECT_TRUE(sharded.records[i] == baseline.records[i]) << "record " << i;
  }
}

TEST(ParallelScanRunner, ProgressSnapshotsAreMonotoneAndComplete) {
  FreshWorld world;
  analysis::ScanOptions options;
  options.rate_pps = 40'000;
  options.shards = 2;
  options.progress_interval = 16;
  std::vector<ProgressSnapshot> snapshots;
  options.progress = [&snapshots](const ProgressSnapshot& snap) {
    snapshots.push_back(snap);
  };
  const analysis::ScanOutput output =
      analysis::run_iw_scan(world.network, world.internet, options);

  ASSERT_FALSE(snapshots.empty());
  std::uint64_t last_merged = 0;
  for (const ProgressSnapshot& snap : snapshots) {
    EXPECT_GE(snap.records_merged, last_merged);
    EXPECT_GE(snap.targets_started, snap.records_merged);
    EXPECT_EQ(snap.shards_total, 2u);
    last_merged = snap.records_merged;
  }
  const ProgressSnapshot& final_snap = snapshots.back();
  EXPECT_EQ(final_snap.shards_done, 2u);
  EXPECT_EQ(final_snap.records_merged, output.records.size());
}

TEST(ParallelScanRunner, MoreShardsThanTargetsStillCoversEverything) {
  // 16 addresses across 8 shards: some workers get two targets, none get
  // zero-probed garbage, and the merge still matches shards=1.
  auto run = [](std::uint64_t shards) {
    FreshWorld world;
    exec::ScanJob job;
    job.probe.protocol = core::ProbeProtocol::Http;
    job.probe.port = 80;
    job.rate_pps = 40'000;
    job.scan_seed = 5;
    job.allow = {*net::Cidr::parse("10.0.0.0/28")};
    job.shards = shards;
    ParallelScanRunner runner(std::move(job));
    return runner.run(world.network, world.internet);
  };
  const ScanResult baseline = run(1);
  const ScanResult sharded = run(8);
  ASSERT_EQ(sharded.records.size(), baseline.records.size());
  for (std::size_t i = 0; i < baseline.records.size(); ++i) {
    EXPECT_TRUE(sharded.records[i] == baseline.records[i]) << "record " << i;
  }
  EXPECT_EQ(sharded.engine.targets_started, baseline.engine.targets_started);
}

}  // namespace
}  // namespace iwscan::exec
