#include <gtest/gtest.h>

#include <set>

#include "netbase/checksum.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/packet.hpp"
#include "netbase/tcp_options.hpp"
#include "util/rng.hpp"

namespace iwscan::net {
namespace {

// ----------------------------------------------------------- IPv4 --------

TEST(IPv4Address, ParseValid) {
  const auto addr = IPv4Address::parse("192.0.2.133");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->octet(0), 192);
  EXPECT_EQ(addr->octet(1), 0);
  EXPECT_EQ(addr->octet(2), 2);
  EXPECT_EQ(addr->octet(3), 133);
  EXPECT_EQ(addr->to_string(), "192.0.2.133");
}

TEST(IPv4Address, ParseRejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x",
                          "01.2.3.4", " 1.2.3.4", "1.2.3.4 ", "-1.2.3.4",
                          "1..2.3"}) {
    EXPECT_FALSE(IPv4Address::parse(bad).has_value()) << bad;
  }
}

TEST(IPv4Address, RoundTripProperty) {
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const IPv4Address addr{static_cast<std::uint32_t>(rng())};
    const auto parsed = IPv4Address::parse(addr.to_string());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, addr);
  }
}

TEST(IPv4Address, Ordering) {
  EXPECT_LT(IPv4Address(10, 0, 0, 1), IPv4Address(10, 0, 0, 2));
  EXPECT_LT(IPv4Address(9, 255, 255, 255), IPv4Address(10, 0, 0, 0));
}

TEST(Cidr, ParseAndContains) {
  const auto cidr = Cidr::parse("203.0.113.0/24");
  ASSERT_TRUE(cidr);
  EXPECT_EQ(cidr->prefix_len, 24);
  EXPECT_EQ(cidr->size(), 256u);
  EXPECT_TRUE(cidr->contains(IPv4Address(203, 0, 113, 77)));
  EXPECT_FALSE(cidr->contains(IPv4Address(203, 0, 114, 0)));
  EXPECT_EQ(cidr->first(), IPv4Address(203, 0, 113, 0));
  EXPECT_EQ(cidr->at(5), IPv4Address(203, 0, 113, 5));
  EXPECT_EQ(cidr->to_string(), "203.0.113.0/24");
}

TEST(Cidr, HostRouteAndZeroLength) {
  const auto host = Cidr::parse("10.1.2.3");
  ASSERT_TRUE(host);
  EXPECT_EQ(host->prefix_len, 32);
  EXPECT_EQ(host->size(), 1u);

  const auto all = Cidr::parse("0.0.0.0/0");
  ASSERT_TRUE(all);
  EXPECT_EQ(all->size(), 1ull << 32);
  EXPECT_TRUE(all->contains(IPv4Address(255, 255, 255, 255)));
}

TEST(Cidr, ParseRejectsMalformed) {
  for (const char* bad : {"10.0.0.0/33", "10.0.0.0/", "10.0.0.0/x", "/24",
                          "10.0.0/24"}) {
    EXPECT_FALSE(Cidr::parse(bad).has_value()) << bad;
  }
}

TEST(Cidr, NonCanonicalBaseIsMasked) {
  const auto cidr = Cidr::parse("10.0.0.77/24");
  ASSERT_TRUE(cidr);
  EXPECT_EQ(cidr->first(), IPv4Address(10, 0, 0, 0));
  EXPECT_TRUE(cidr->contains(IPv4Address(10, 0, 0, 1)));
}

// --------------------------------------------------------- checksum ------

TEST(Checksum, KnownVector) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 → checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthAndEmpty) {
  const std::uint8_t odd[] = {0xab};
  EXPECT_EQ(internet_checksum(odd), static_cast<std::uint16_t>(~0xab00 & 0xffff));
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, VerifiesToZero) {
  // A buffer with its own checksum patched in sums to zero.
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34,
                                    0x00, 0x00, 0x40, 0x06, 0x00, 0x00,
                                    10,   0,    0,    1,    10,   0,   0, 2};
  const std::uint16_t checksum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(checksum >> 8);
  data[11] = static_cast<std::uint8_t>(checksum);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, WordWiseMatchesScalarOracle) {
  // Property test for the word-at-a-time kernel: for random lengths and
  // start alignments covering every residue the 8-byte loop can see
  // (head < 8 bytes, odd trailing byte, sub-word buffers), the fast path
  // must equal the byte-pair reference.
  util::Rng rng(0xc5'c5'c5'c5);
  std::vector<std::uint8_t> arena(2048 + 16);
  for (std::uint8_t& byte : arena) {
    byte = static_cast<std::uint8_t>(rng());
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t offset = rng.below(9);
    const std::size_t length = rng.below(2001);
    const std::span<const std::uint8_t> bytes{arena.data() + offset, length};
    ASSERT_EQ(internet_checksum(bytes), internet_checksum_scalar(bytes))
        << "offset=" << offset << " length=" << length;
  }
}

TEST(Checksum, CarryFoldSurvivesAllOnes) {
  // All-0xff input maximises per-word sums; repeated add() calls push the
  // 64-bit accumulator through its carry folds. The scalar oracle run on
  // the identical sequence must finish() to the same value.
  const std::vector<std::uint8_t> ones(1500, 0xff);
  ChecksumAccumulator fast;
  ChecksumAccumulator oracle;
  for (int i = 0; i < 64; ++i) {
    fast.add(ones);
    oracle.add_scalar(ones);
  }
  EXPECT_EQ(fast.finish(), oracle.finish());
}

TEST(Checksum, ChunkedAddsMatchSingleAdd) {
  // RFC 1071: the sum is associative over even-length splits, and our
  // accumulator also pads each add()'s odd trailing byte — so splitting at
  // even offsets must be equivalent to one contiguous add. This is how
  // tcp_checksum mixes pseudo-header, header, and payload spans.
  util::Rng rng(7);
  std::vector<std::uint8_t> data(1499);
  for (std::uint8_t& byte : data) {
    byte = static_cast<std::uint8_t>(rng());
  }
  ChecksumAccumulator whole;
  whole.add(data);
  ChecksumAccumulator chunked;
  std::size_t cursor = 0;
  while (cursor < data.size()) {
    std::size_t step = 2 * (1 + rng.below(64));
    step = std::min(step, data.size() - cursor);
    chunked.add({data.data() + cursor, step});
    cursor += step;
  }
  EXPECT_EQ(chunked.finish(), whole.finish());
}

// -------------------------------------------------------- TCP options ----

TEST(TcpOptions, RoundTripStandardSet) {
  const std::vector<TcpOption> options = {MssOption{64}, WindowScaleOption{7},
                                          SackPermittedOption{}};
  Bytes bytes;
  WireWriter writer(bytes);
  encode_tcp_options(options, writer);
  EXPECT_EQ(bytes.size() % 4, 0u);
  EXPECT_EQ(bytes.size(), encoded_tcp_options_size(options));

  const auto decoded = decode_tcp_options(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(find_mss(*decoded), 64);
  EXPECT_EQ(find_window_scale(*decoded), 7);
  EXPECT_TRUE(has_sack_permitted(*decoded));
}

TEST(TcpOptions, UnknownOptionsRoundTrip) {
  const std::vector<TcpOption> options = {
      UnknownOption{8, Bytes{1, 2, 3, 4, 5, 6, 7, 8}},  // timestamps-shaped
      MssOption{1460},
  };
  Bytes bytes;
  WireWriter writer(bytes);
  encode_tcp_options(options, writer);
  const auto decoded = decode_tcp_options(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), 2u);
  const auto* unknown = std::get_if<UnknownOption>(&decoded->front());
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->kind, 8);
  EXPECT_EQ(unknown->data.size(), 8u);
  EXPECT_EQ(find_mss(*decoded), 1460);
}

TEST(TcpOptions, MalformedLengthRejected) {
  // MSS option with bogus length.
  EXPECT_FALSE(decode_tcp_options(Bytes{2, 3, 0}).has_value());
  // Length extending past the buffer.
  EXPECT_FALSE(decode_tcp_options(Bytes{2, 4, 0}).has_value());
  // Zero-length option.
  EXPECT_FALSE(decode_tcp_options(Bytes{8, 0}).has_value());
  // Truncated: kind without length.
  EXPECT_FALSE(decode_tcp_options(Bytes{2}).has_value());
}

TEST(TcpOptions, NopPaddingAndEndHandled) {
  // NOP NOP MSS, then END followed by garbage that must be ignored.
  const Bytes bytes = {1, 1, 2, 4, 0x05, 0xb4, 0, 0xde, 0xad};
  const auto decoded = decode_tcp_options(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(find_mss(*decoded), 1460);
  EXPECT_EQ(decoded->size(), 1u);
}

TEST(TcpOptions, EmptyIsValid) {
  const auto decoded = decode_tcp_options({});
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->empty());
  EXPECT_EQ(encoded_tcp_options_size({}), 0u);
}

// ----------------------------------------------------------- packets -----

TcpSegment sample_segment() {
  TcpSegment segment;
  segment.ip.src = IPv4Address(192, 0, 2, 1);
  segment.ip.dst = IPv4Address(10, 3, 2, 1);
  segment.ip.ttl = 61;
  segment.ip.dont_fragment = true;
  segment.tcp.src_port = 40001;
  segment.tcp.dst_port = 80;
  segment.tcp.seq = 0xdeadbeef;
  segment.tcp.ack = 0x01020304;
  segment.tcp.flags = kSyn;
  segment.tcp.window = 65535;
  segment.tcp.options.push_back(MssOption{64});
  return segment;
}

TEST(Packet, TcpRoundTrip) {
  const TcpSegment original = sample_segment();
  const Bytes bytes = encode(original);
  const auto decoded = decode_datagram(bytes);
  ASSERT_TRUE(decoded);
  const auto* segment = std::get_if<TcpSegment>(&*decoded);
  ASSERT_NE(segment, nullptr);
  EXPECT_EQ(segment->ip.src, original.ip.src);
  EXPECT_EQ(segment->ip.dst, original.ip.dst);
  EXPECT_EQ(segment->ip.ttl, 61);
  EXPECT_TRUE(segment->ip.dont_fragment);
  EXPECT_EQ(segment->tcp.src_port, 40001);
  EXPECT_EQ(segment->tcp.seq, 0xdeadbeef);
  EXPECT_EQ(segment->tcp.flags, kSyn);
  EXPECT_EQ(find_mss(segment->tcp.options), 64);
  EXPECT_TRUE(segment->payload.empty());
}

TEST(Packet, TcpPayloadRoundTripProperty) {
  util::Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    TcpSegment segment = sample_segment();
    segment.tcp.flags = static_cast<std::uint8_t>(rng.below(0x40));
    segment.tcp.seq = static_cast<std::uint32_t>(rng());
    segment.tcp.ack = static_cast<std::uint32_t>(rng());
    segment.tcp.window = static_cast<std::uint16_t>(rng());
    if (rng.chance(0.5)) segment.tcp.options.clear();
    const std::size_t payload_len = rng.below(1460);
    segment.payload.resize(payload_len);
    for (auto& byte : segment.payload) byte = static_cast<std::uint8_t>(rng());

    const auto decoded = decode_datagram(encode(segment));
    ASSERT_TRUE(decoded) << "trial " << trial;
    const auto* out = std::get_if<TcpSegment>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->tcp.seq, segment.tcp.seq);
    EXPECT_EQ(out->tcp.ack, segment.tcp.ack);
    EXPECT_EQ(out->tcp.flags, segment.tcp.flags);
    EXPECT_EQ(out->tcp.window, segment.tcp.window);
    EXPECT_EQ(out->payload, segment.payload);
  }
}

TEST(Packet, SeqLengthCountsSynFin) {
  TcpSegment segment = sample_segment();
  segment.payload = {1, 2, 3};
  segment.tcp.flags = kSyn | kFin;
  EXPECT_EQ(segment.seq_length(), 5u);
  segment.tcp.flags = kAck;
  EXPECT_EQ(segment.seq_length(), 3u);
}

TEST(Packet, CorruptionIsDetected) {
  Bytes bytes = encode(sample_segment());
  // Flip one payload/header bit at every position; decode must fail or the
  // decoded content must differ (checksums catch every single-bit error).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    Bytes corrupted = bytes;
    corrupted[i] ^= 0x01;
    const auto decoded = decode_datagram(corrupted);
    EXPECT_FALSE(decoded.has_value()) << "offset " << i;
  }
}

TEST(Packet, TruncationRejected) {
  const Bytes bytes = encode(sample_segment());
  for (const std::size_t keep : {0u, 10u, 19u, 20u, 25u, 39u}) {
    if (keep >= bytes.size()) continue;
    const Bytes truncated(bytes.begin(), bytes.begin() + keep);
    EXPECT_FALSE(decode_datagram(truncated).has_value()) << keep;
  }
}

TEST(Packet, IcmpRoundTrip) {
  IcmpDatagram datagram;
  datagram.ip.src = IPv4Address(10, 0, 0, 1);
  datagram.ip.dst = IPv4Address(192, 0, 2, 1);
  datagram.icmp.type = IcmpType::Echo;
  datagram.icmp.code = 0;
  datagram.icmp.id_or_unused = 0x1234;
  datagram.icmp.seq_or_mtu = 7;
  datagram.icmp.payload = {9, 8, 7, 6};

  const auto decoded = decode_datagram(encode(datagram));
  ASSERT_TRUE(decoded);
  const auto* icmp = std::get_if<IcmpDatagram>(&*decoded);
  ASSERT_NE(icmp, nullptr);
  EXPECT_EQ(icmp->icmp.type, IcmpType::Echo);
  EXPECT_EQ(icmp->icmp.id_or_unused, 0x1234);
  EXPECT_EQ(icmp->icmp.seq_or_mtu, 7);
  EXPECT_EQ(icmp->icmp.payload, (Bytes{9, 8, 7, 6}));
}

TEST(Packet, FragNeededCarriesMtu) {
  IcmpDatagram datagram;
  datagram.ip.src = IPv4Address(10, 0, 0, 1);
  datagram.ip.dst = IPv4Address(192, 0, 2, 1);
  datagram.icmp.type = IcmpType::DestinationUnreachable;
  datagram.icmp.code = kIcmpFragNeeded;
  datagram.icmp.seq_or_mtu = 1400;
  const auto decoded = decode_datagram(encode(datagram));
  ASSERT_TRUE(decoded);
  const auto* icmp = std::get_if<IcmpDatagram>(&*decoded);
  ASSERT_NE(icmp, nullptr);
  EXPECT_EQ(icmp->icmp.seq_or_mtu, 1400);
  EXPECT_EQ(icmp->icmp.code, kIcmpFragNeeded);
}

TEST(Packet, PeekAddresses) {
  const Bytes bytes = encode(sample_segment());
  EXPECT_EQ(peek_source(bytes), IPv4Address(192, 0, 2, 1));
  EXPECT_EQ(peek_destination(bytes), IPv4Address(10, 3, 2, 1));
  EXPECT_FALSE(peek_destination(Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(peek_source({}).has_value());
}

TEST(Packet, UnsupportedProtocolRejected) {
  Bytes bytes = encode(sample_segment());
  bytes[9] = 17;  // claim UDP
  // Header checksum no longer matches → reject (and even if it did, UDP is
  // unsupported).
  EXPECT_FALSE(decode_datagram(bytes).has_value());
}

TEST(Packet, FragmentFieldsRoundTrip) {
  TcpSegment segment = sample_segment();
  segment.ip.dont_fragment = false;
  segment.ip.more_fragments = true;
  segment.ip.fragment_offset = 0x123;
  segment.ip.identification = 0xbeef;
  segment.ip.tos = 0x10;
  const auto decoded = decode_datagram(encode(segment));
  ASSERT_TRUE(decoded);
  const auto& ip = std::get<TcpSegment>(*decoded).ip;
  EXPECT_FALSE(ip.dont_fragment);
  EXPECT_TRUE(ip.more_fragments);
  EXPECT_EQ(ip.fragment_offset, 0x123);
  EXPECT_EQ(ip.identification, 0xbeef);
  EXPECT_EQ(ip.tos, 0x10);
}

TEST(WireReader, NeverReadsOutOfBounds) {
  // Property: any sequence of reads on a short buffer fails safe.
  const Bytes data = {1, 2, 3};
  WireReader reader(data);
  EXPECT_EQ(reader.u16(), 0x0102);
  EXPECT_EQ(reader.u32(), 0u);  // only 1 byte left → zero + !ok
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(reader.raw(10).empty());
  reader.skip(100);  // must not crash or advance past the end
  EXPECT_FALSE(reader.ok());
}

TEST(WireReader, U24AndPatches) {
  Bytes data;
  WireWriter writer(data);
  writer.u24(0x010203);
  const std::size_t at = writer.offset();
  writer.u24(0);
  writer.patch_u24(at, 0xaabbcc);

  WireReader reader(data);
  EXPECT_EQ(reader.u24(), 0x010203u);
  EXPECT_EQ(reader.u24(), 0xaabbccu);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(WireWriter, PatchPastEndThrows) {
  Bytes data;
  WireWriter writer(data);
  writer.u16(0xbeef);
  // Entirely past the end.
  EXPECT_THROW(writer.patch_u8(2, 1), std::out_of_range);
  EXPECT_THROW(writer.patch_u16(2, 1), std::out_of_range);
  EXPECT_THROW(writer.patch_u24(2, 1), std::out_of_range);
  // Straddling the end: first byte in range, tail out.
  EXPECT_THROW(writer.patch_u16(1, 1), std::out_of_range);
  EXPECT_THROW(writer.patch_u24(0, 1), std::out_of_range);
  // In range still works, and the failed patches wrote nothing.
  writer.patch_u16(0, 0xcafe);
  EXPECT_EQ(data, (Bytes{0xca, 0xfe}));
}

TEST(TcpOptions, OverrunKindRejected) {
  // Unknown kind whose length runs past the buffer.
  EXPECT_FALSE(decode_tcp_options(Bytes{99, 10, 1, 2}).has_value());
  // Unknown kind with zero length (would never make progress).
  EXPECT_FALSE(decode_tcp_options(Bytes{99, 0, 1, 2}).has_value());
  // Unknown kind with length 1 (covers only the kind octet).
  EXPECT_FALSE(decode_tcp_options(Bytes{99, 1, 1, 2}).has_value());
}

TEST(TcpOptions, OversizedUnknownPayloadClamped) {
  // The option length octet tops out at 255 (2 + 253 payload bytes); the
  // encoder must clamp, not truncate the length and desync the stream.
  const std::vector<TcpOption> options = {UnknownOption{99, Bytes(300, 0xab)}};
  Bytes bytes;
  WireWriter writer(bytes);
  encode_tcp_options(options, writer);
  EXPECT_EQ(bytes.size(), encoded_tcp_options_size(options));
  const auto decoded = decode_tcp_options(bytes);
  ASSERT_TRUE(decoded);
  const auto* unknown = std::get_if<UnknownOption>(&decoded->front());
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->data.size(), 253u);
}

TEST(IPv4AddressHash, DispersesSequentialAddresses) {
  std::set<std::size_t> buckets;
  std::hash<IPv4Address> hasher;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    buckets.insert(hasher(IPv4Address{0x0a000000 + i}) % 1024);
  }
  // Sequential IPs must spread over most buckets, not cluster.
  EXPECT_GT(buckets.size(), 500u);
}

// Parameterized: header round trip across flag combinations.
class FlagRoundTrip : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(FlagRoundTrip, PreservesFlags) {
  TcpSegment segment = sample_segment();
  segment.tcp.flags = GetParam();
  const auto decoded = decode_datagram(encode(segment));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(std::get<TcpSegment>(*decoded).tcp.flags, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllCommonFlagSets, FlagRoundTrip,
                         ::testing::Values(kSyn, kSyn | kAck, kAck, kAck | kPsh,
                                           kFin | kAck, kRst, kRst | kAck,
                                           kFin | kAck | kPsh, kUrg | kAck));

}  // namespace
}  // namespace iwscan::net
