// TLS record framing, handshake codecs, synthetic certificates, and the
// server's first-flight behaviour (§3.3's counterparty).
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "tcpstack/host.hpp"
#include "tls/cert.hpp"
#include "tls/handshake.hpp"
#include "tls/records.hpp"
#include "tls/tls_server.hpp"
#include "util/rng.hpp"

namespace iwscan::tls {
namespace {

// ------------------------------------------------------------ records ----

TEST(Records, RoundTrip) {
  Record record;
  record.type = ContentType::Handshake;
  record.version = kTls12;
  record.payload = {1, 2, 3, 4, 5};
  net::Bytes wire;
  encode_record(record, wire);
  ASSERT_EQ(wire.size(), 10u);

  RecordReader reader;
  reader.feed(wire);
  const auto out = reader.next();
  ASSERT_TRUE(out);
  EXPECT_EQ(out->type, ContentType::Handshake);
  EXPECT_EQ(out->version, kTls12);
  EXPECT_EQ(out->payload, record.payload);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Records, IncrementalDeframing) {
  Record record;
  record.payload.assign(100, 0xaa);
  net::Bytes wire;
  encode_record(record, wire);

  RecordReader reader;
  // Feed byte by byte; a record must only appear once complete.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(reader.next().has_value());
    reader.feed(std::span(&wire[i], 1));
  }
  EXPECT_TRUE(reader.next().has_value());
}

TEST(Records, MultipleRecordsInOneBuffer) {
  net::Bytes wire;
  for (int i = 0; i < 3; ++i) {
    Record record;
    record.type = ContentType::Alert;
    record.payload = {static_cast<std::uint8_t>(i)};
    encode_record(record, wire);
  }
  RecordReader reader;
  reader.feed(wire);
  for (std::uint8_t i = 0; i < 3; ++i) {
    const auto record = reader.next();
    ASSERT_TRUE(record);
    EXPECT_EQ(record->payload[0], i);
  }
}

TEST(Records, FragmentationSplitsLargePayloads) {
  net::Bytes payload(40'000, 0x5c);
  net::Bytes wire;
  encode_fragmented(ContentType::Handshake, kTls12, payload, wire);

  RecordReader reader;
  reader.feed(wire);
  std::size_t total = 0;
  int records = 0;
  while (const auto record = reader.next()) {
    EXPECT_LE(record->payload.size(), kMaxRecordPayload);
    total += record->payload.size();
    ++records;
  }
  EXPECT_EQ(total, 40'000u);
  EXPECT_EQ(records, 3);
}

TEST(Records, TruncatedHeaderStaysPending) {
  // 1–4 header bytes must neither parse nor trip malformed(); the record
  // completes once the remaining bytes arrive.
  Record record;
  record.payload = {0xaa, 0xbb};
  net::Bytes wire;
  encode_record(record, wire);
  for (std::size_t cut = 1; cut < 5; ++cut) {
    RecordReader reader;
    reader.feed(std::span<const std::uint8_t>(wire).first(cut));
    EXPECT_FALSE(reader.next().has_value()) << "cut at " << cut;
    EXPECT_FALSE(reader.malformed()) << "cut at " << cut;
    reader.feed(std::span<const std::uint8_t>(wire).subspan(cut));
    const auto out = reader.next();
    ASSERT_TRUE(out) << "cut at " << cut;
    EXPECT_EQ(out->payload, record.payload);
  }
}

TEST(Records, OversizedLengthRejected) {
  RecordReader reader;
  // Valid type/version but a length beyond the reader's tolerance.
  reader.feed(net::Bytes{22, 3, 3, 0xff, 0xff});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.malformed());
}

TEST(Records, EncodeOversizedPayloadThrows) {
  Record record;
  record.payload.assign(kMaxRecordPayload + 1, 0);
  net::Bytes wire;
  EXPECT_THROW(encode_record(record, wire), std::length_error);
  // encode_fragmented is the sanctioned path for large payloads.
  encode_fragmented(ContentType::Handshake, kTls12, record.payload, wire);
  EXPECT_EQ(wire.size(), record.payload.size() + 2 * 5);
}

TEST(Records, MalformedTypeDetected) {
  RecordReader reader;
  reader.feed(net::Bytes{99, 3, 3, 0, 1, 0});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.malformed());
}

TEST(Records, AlertRoundTrip) {
  const auto wire = encode_alert(AlertLevel::Fatal, AlertDescription::UnrecognizedName);
  const auto alert = decode_alert(wire);
  ASSERT_TRUE(alert);
  EXPECT_EQ(alert->level, AlertLevel::Fatal);
  EXPECT_EQ(alert->description, AlertDescription::UnrecognizedName);
  EXPECT_FALSE(decode_alert(net::Bytes{1}).has_value());
  EXPECT_FALSE(decode_alert(net::Bytes{1, 2, 3}).has_value());
}

// ---------------------------------------------------------- handshake ----

TEST(Handshake, FramingRoundTrip) {
  const net::Bytes body = {9, 9, 9};
  const auto framed = encode_handshake(HandshakeType::Certificate, body);
  const auto messages = split_handshakes(framed);
  ASSERT_TRUE(messages);
  ASSERT_EQ(messages->size(), 1u);
  EXPECT_EQ(messages->front().type, HandshakeType::Certificate);
  EXPECT_EQ(messages->front().body, body);
}

TEST(Handshake, ConcatenatedMessagesSplit) {
  net::Bytes flight;
  for (const auto type :
       {HandshakeType::ServerHello, HandshakeType::Certificate,
        HandshakeType::ServerHelloDone}) {
    const auto framed =
        encode_handshake(type, net::Bytes{static_cast<std::uint8_t>(type)});
    flight.insert(flight.end(), framed.begin(), framed.end());
  }
  const auto messages = split_handshakes(flight);
  ASSERT_TRUE(messages);
  ASSERT_EQ(messages->size(), 3u);
  EXPECT_EQ((*messages)[2].type, HandshakeType::ServerHelloDone);
}

TEST(Handshake, TruncatedSplitRejected) {
  auto framed = encode_handshake(HandshakeType::ServerHello, net::Bytes(10, 0));
  framed.pop_back();
  EXPECT_FALSE(split_handshakes(framed).has_value());
}

TEST(ClientHello, RoundTripWithSniAndOcsp) {
  ClientHello hello;
  const auto probe = probe_cipher_list();
  hello.cipher_suites.assign(probe.begin(), probe.end());
  hello.server_name = "www.example.net";
  hello.ocsp_stapling = true;
  util::Rng rng(4);
  for (auto& byte : hello.random) byte = static_cast<std::uint8_t>(rng());

  const auto decoded = ClientHello::decode(hello.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->cipher_suites.size(), 40u);
  EXPECT_EQ(decoded->cipher_suites, hello.cipher_suites);
  EXPECT_EQ(decoded->server_name, "www.example.net");
  EXPECT_TRUE(decoded->ocsp_stapling);
  EXPECT_EQ(decoded->random, hello.random);
}

TEST(ClientHello, NoSniDecodesAsAbsent) {
  ClientHello hello;
  hello.cipher_suites = {0xC02F};
  hello.server_name.reset();
  const auto decoded = ClientHello::decode(hello.encode());
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->server_name.has_value());
}

TEST(ClientHello, TruncatedRejected) {
  ClientHello hello;
  hello.cipher_suites = {0xC02F};
  auto body = hello.encode();
  body.resize(20);
  EXPECT_FALSE(ClientHello::decode(body).has_value());
}

TEST(ServerHello, RoundTripWithExtras) {
  ServerHello hello;
  hello.cipher_suite = 0xC030;
  hello.ocsp_stapling = true;
  hello.extra_extension_bytes = 120;
  hello.session_id.assign(32, 7);
  const auto body = hello.encode();
  EXPECT_GT(body.size(), 150u) << "extras must inflate the hello";
  const auto decoded = ServerHello::decode(body);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->cipher_suite, 0xC030);
  EXPECT_TRUE(decoded->ocsp_stapling);
  EXPECT_EQ(decoded->session_id.size(), 32u);
}

TEST(ServerHello, MalformedExtensionBlockRejected) {
  // Regression: an extension whose length runs past the block used to make
  // skip() a silent no-op and spin decode() forever. Must reject instead.
  ServerHello hello;
  hello.cipher_suite = 0xC02F;
  auto body = hello.encode();
  net::WireWriter writer(body);
  writer.u16(8);       // extensions total: 8 bytes follow
  writer.u16(0x0005);  // extension type
  writer.u16(0xffff);  // extension length far past the block
  writer.u16(0);       // filler so the loop condition holds
  EXPECT_FALSE(ServerHello::decode(body).has_value());
}

TEST(ServerHello, ExtensionTotalPastBodyRejected) {
  ServerHello hello;
  auto body = hello.encode();
  net::WireWriter writer(body);
  writer.u16(0xffff);  // announces far more extension bytes than exist
  EXPECT_FALSE(ServerHello::decode(body).has_value());
}

TEST(ClientHello, CipherLengthOverrunRejected) {
  ClientHello hello;
  hello.cipher_suites = {0xC02F};
  auto body = hello.encode();
  // cipher_suites length field sits after version(2) + random(32) +
  // session_id_len(1): claim more suite bytes than the body holds.
  body[35] = 0xff;
  body[36] = 0xff;
  EXPECT_FALSE(ClientHello::decode(body).has_value());
}

TEST(CertificateChain, RoundTrip) {
  CertificateChain chain;
  chain.certificates.push_back(net::Bytes(1200, 1));
  chain.certificates.push_back(net::Bytes(900, 2));
  const auto decoded = CertificateChain::decode(chain.encode());
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->certificates.size(), 2u);
  EXPECT_EQ(decoded->certificates[0].size(), 1200u);
  EXPECT_EQ(decoded->total_certificate_bytes(), 2100u);
}

TEST(CertificateChain, BadLengthsRejected) {
  CertificateChain chain;
  chain.certificates.push_back(net::Bytes(100, 1));
  auto body = chain.encode();
  body[2] += 1;  // corrupt total length
  EXPECT_FALSE(CertificateChain::decode(body).has_value());
}

// ------------------------------------------------------------ ciphers ----

TEST(Ciphers, ProbeListHas40UniqueSuites) {
  const auto list = probe_cipher_list();
  EXPECT_EQ(list.size(), 40u);
  std::set<CipherSuite> unique(list.begin(), list.end());
  EXPECT_EQ(unique.size(), 40u);
}

TEST(Ciphers, NegotiationPrefersClientOrder) {
  const std::vector<CipherSuite> server = {0x002F, 0xC02F};
  const auto list = probe_cipher_list();
  // 0xC02F appears before 0x002F in the probe list.
  EXPECT_EQ(negotiate(list, server), 0xC02F);
}

TEST(Ciphers, ExoticSetNeverNegotiates) {
  const auto exotic = cipher_set(CipherProfile::Exotic);
  EXPECT_EQ(negotiate(probe_cipher_list(), exotic), 0);
  // All the other profiles must negotiate.
  for (const auto profile :
       {CipherProfile::Modern, CipherProfile::Standard, CipherProfile::Legacy}) {
    EXPECT_NE(negotiate(probe_cipher_list(), cipher_set(profile)), 0);
  }
}

TEST(Ciphers, Names) {
  EXPECT_EQ(cipher_name(0xC02F), "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256");
  EXPECT_EQ(cipher_name(0xBEEF), "0xBEEF");
}

// --------------------------------------------------------------- cert ----

class CertSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CertSize, ExactSizeAndDerFraming) {
  const auto cert = make_certificate(GetParam(), "cn=test", 5);
  EXPECT_EQ(cert.size(), std::max<std::size_t>(GetParam(), 8));
  EXPECT_EQ(cert[0], 0x30);  // DER SEQUENCE
  EXPECT_EQ(cert[1], 0x82);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CertSize,
                         ::testing::Values(8u, 36u, 640u, 2186u, 65'000u));

TEST(CertChainGen, TotalBytesIsExact) {
  for (const std::size_t total : {36u, 500u, 1200u, 2186u, 4200u, 20'000u}) {
    const auto chain = make_chain(total, "host", 11);
    EXPECT_EQ(chain.total_certificate_bytes(), std::max<std::size_t>(total, 8))
        << total;
  }
}

TEST(CertChainGen, RealisticLayout) {
  EXPECT_EQ(make_chain(600, "x", 1).certificates.size(), 1u);
  EXPECT_EQ(make_chain(2186, "x", 1).certificates.size(), 2u);
  EXPECT_EQ(make_chain(9000, "x", 1).certificates.size(), 3u);
}

TEST(CertChainGen, Deterministic) {
  EXPECT_EQ(make_chain(2186, "x", 7).encode(), make_chain(2186, "x", 7).encode());
  EXPECT_NE(make_chain(2186, "x", 7).encode(), make_chain(2186, "x", 8).encode());
}

// ------------------------------------------------- server first flight ---

/// Captures everything a TLS server sends on one connection.
struct TlsRig {
  sim::EventLoop loop;
  sim::Network network{loop, 9};
  std::unique_ptr<tcp::TcpHost> host;
  const net::IPv4Address server_ip{10, 0, 0, 2};
  const net::IPv4Address client_ip{192, 0, 2, 6};

  struct Client final : sim::Endpoint {
    sim::Network& network;
    net::IPv4Address self, server;
    net::Bytes stream;
    bool fin = false;
    std::uint32_t rcv_nxt = 0;
    std::uint32_t isn = 500;
    net::Bytes hello;
    net::Bytes split_tail;  // second ClientHello fragment, if splitting
    bool tail_sent = false;

    Client(sim::Network& n, net::IPv4Address s, net::IPv4Address d)
        : network(n), self(s), server(d) {
      network.attach(self, this);
    }
    ~Client() override { network.detach(self); }

    void start(net::Bytes client_hello) {
      hello = std::move(client_hello);
      send(isn, 0, net::kSyn, true);
    }
    void handle_packet(net::PacketView bytes) override {
      const auto datagram = net::decode_datagram(bytes);
      if (!datagram) return;
      const auto* segment = std::get_if<net::TcpSegment>(&*datagram);
      if (!segment || segment->tcp.has(net::kRst)) return;
      if (segment->tcp.has(net::kSyn)) {
        rcv_nxt = segment->tcp.seq + 1;
        send(isn + 1, rcv_nxt, net::kAck | net::kPsh, false, hello);
        return;
      }
      if (!split_tail.empty() && !tail_sent && segment->payload.empty()) {
        // The server ACKed the first fragment; deliver the rest.
        tail_sent = true;
        send(isn + 1 + static_cast<std::uint32_t>(hello.size()), rcv_nxt,
             net::kAck | net::kPsh, false, split_tail);
        return;
      }
      if (!segment->payload.empty() && segment->tcp.seq == rcv_nxt) {
        stream.insert(stream.end(), segment->payload.begin(),
                      segment->payload.end());
        rcv_nxt += static_cast<std::uint32_t>(segment->payload.size());
      }
      if (segment->tcp.has(net::kFin)) fin = true;
      send(isn + 1 + static_cast<std::uint32_t>(hello.size()), rcv_nxt, net::kAck,
           false);
    }
    void send(std::uint32_t seq, std::uint32_t ack, std::uint8_t flags, bool mss,
              net::Bytes payload = {}) {
      net::TcpSegment segment;
      segment.ip.src = self;
      segment.ip.dst = server;
      segment.tcp.src_port = 45000;
      segment.tcp.dst_port = 443;
      segment.tcp.seq = seq;
      segment.tcp.ack = ack;
      segment.tcp.flags = flags;
      segment.tcp.window = 65535;
      if (mss) segment.tcp.options.push_back(net::MssOption{1460});
      segment.payload = std::move(payload);
      network.send(net::encode(segment));
    }
  };
  std::unique_ptr<Client> client;

  explicit TlsRig(TlsConfig config) {
    tcp::StackConfig stack;
    stack.iw = tcp::IwConfig::segments_of(10);
    host = std::make_unique<tcp::TcpHost>(network, server_ip, stack, 2);
    host->listen(443, TlsServerApp::factory(std::move(config)));
    network.attach(server_ip, host.get());
    client = std::make_unique<Client>(network, client_ip, server_ip);
  }

  /// Like run(), but the ClientHello is delivered in two TCP segments —
  /// the record reassembly path a real fragmented handshake exercises.
  net::Bytes run_split(bool with_sni) {
    ClientHello hello;
    const auto probe = probe_cipher_list();
    hello.cipher_suites.assign(probe.begin(), probe.end());
    if (with_sni) hello.server_name = "www.example.net";
    const auto framed = encode_handshake(HandshakeType::ClientHello, hello.encode());
    net::Bytes wire;
    encode_fragmented(ContentType::Handshake, kTls10, framed, wire);

    // First half rides on the handshake ACK; the rest follows.
    const std::size_t half = wire.size() / 2;
    client->split_tail.assign(wire.begin() + static_cast<std::ptrdiff_t>(half),
                              wire.end());
    wire.resize(half);
    client->start(wire);
    loop.run_until(loop.now() + sim::sec(5));
    return client->stream;
  }

  net::Bytes run(bool with_sni, bool exotic_client = false) {
    ClientHello hello;
    const auto probe = probe_cipher_list();
    hello.cipher_suites.assign(probe.begin(), probe.end());
    if (exotic_client) hello.cipher_suites = {0x9999};
    hello.ocsp_stapling = true;
    if (with_sni) hello.server_name = "www.example.net";
    const auto framed = encode_handshake(HandshakeType::ClientHello, hello.encode());
    net::Bytes wire;
    encode_fragmented(ContentType::Handshake, kTls10, framed, wire);
    client->start(wire);
    loop.run_until(loop.now() + sim::sec(5));
    return client->stream;
  }
};

std::vector<Record> parse_stream(const net::Bytes& stream) {
  RecordReader reader;
  reader.feed(stream);
  std::vector<Record> records;
  while (auto record = reader.next()) records.push_back(std::move(*record));
  return records;
}

TEST(TlsServer, FirstFlightContainsFullChain) {
  TlsConfig config;
  config.chain_bytes = 3000;
  config.server_name = "unit.test";
  TlsRig rig(config);
  const auto stream = rig.run(/*with_sni=*/true);
  const auto records = parse_stream(stream);
  ASSERT_FALSE(records.empty());

  net::Bytes handshake_payload;
  for (const auto& record : records) {
    ASSERT_EQ(record.type, ContentType::Handshake);
    handshake_payload.insert(handshake_payload.end(), record.payload.begin(),
                             record.payload.end());
  }
  const auto messages = split_handshakes(handshake_payload);
  ASSERT_TRUE(messages);
  ASSERT_GE(messages->size(), 3u);
  EXPECT_EQ((*messages)[0].type, HandshakeType::ServerHello);
  EXPECT_EQ((*messages)[1].type, HandshakeType::Certificate);
  EXPECT_EQ(messages->back().type, HandshakeType::ServerHelloDone);

  const auto chain = CertificateChain::decode((*messages)[1].body);
  ASSERT_TRUE(chain);
  EXPECT_EQ(chain->total_certificate_bytes(), 3000u);

  const auto server_hello = ServerHello::decode((*messages)[0].body);
  ASSERT_TRUE(server_hello);
  EXPECT_NE(server_hello->cipher_suite, 0);
  EXPECT_FALSE(rig.client->fin) << "server waits for the key exchange";
}

TEST(TlsServer, ClientHelloSplitAcrossSegmentsIsReassembled) {
  TlsConfig config;
  config.chain_bytes = 2000;
  TlsRig rig(config);
  const auto stream = rig.run_split(/*with_sni=*/true);
  const auto records = parse_stream(stream);
  ASSERT_FALSE(records.empty()) << "server must wait for the full record";
  EXPECT_EQ(records[0].type, ContentType::Handshake);
  net::Bytes payload;
  for (const auto& record : records) {
    payload.insert(payload.end(), record.payload.begin(), record.payload.end());
  }
  const auto messages = split_handshakes(payload);
  ASSERT_TRUE(messages);
  EXPECT_EQ(messages->front().type, HandshakeType::ServerHello);
}

TEST(TlsServer, OcspStaplingAddsCertificateStatus) {
  TlsConfig config;
  config.chain_bytes = 1000;
  config.ocsp_staple = true;
  config.ocsp_response_bytes = 800;
  TlsRig rig(config);
  const auto stream = rig.run(true);
  net::Bytes payload;
  for (const auto& record : parse_stream(stream)) {
    payload.insert(payload.end(), record.payload.begin(), record.payload.end());
  }
  const auto messages = split_handshakes(payload);
  ASSERT_TRUE(messages);
  bool has_status = false;
  for (const auto& message : *messages) {
    has_status |= message.type == HandshakeType::CertificateStatus;
  }
  EXPECT_TRUE(has_status);
}

TEST(TlsServer, SniAlertPolicy) {
  TlsConfig config;
  config.sni_policy = SniPolicy::AlertAndClose;
  TlsRig rig(config);
  const auto stream = rig.run(/*with_sni=*/false);
  const auto records = parse_stream(stream);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, ContentType::Alert);
  const auto alert = decode_alert(records[0].payload);
  ASSERT_TRUE(alert);
  EXPECT_EQ(alert->description, AlertDescription::UnrecognizedName);
  EXPECT_TRUE(rig.client->fin);
}

TEST(TlsServer, SniAlertPolicyStillServesNamedClients) {
  TlsConfig config;
  config.sni_policy = SniPolicy::AlertAndClose;
  config.chain_bytes = 1500;
  TlsRig rig(config);
  const auto stream = rig.run(/*with_sni=*/true);
  const auto records = parse_stream(stream);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records[0].type, ContentType::Handshake);
}

TEST(TlsServer, SilentClosePolicy) {
  TlsConfig config;
  config.sni_policy = SniPolicy::SilentClose;
  TlsRig rig(config);
  const auto stream = rig.run(false);
  EXPECT_TRUE(stream.empty());
  EXPECT_TRUE(rig.client->fin);
}

TEST(TlsServer, NoCommonCipherYieldsHandshakeFailure) {
  TlsConfig config;
  TlsRig rig(config);
  const auto stream = rig.run(true, /*exotic_client=*/true);
  const auto records = parse_stream(stream);
  ASSERT_EQ(records.size(), 1u);
  const auto alert = decode_alert(records[0].payload);
  ASSERT_TRUE(alert);
  EXPECT_EQ(alert->description, AlertDescription::HandshakeFailure);
}

}  // namespace
}  // namespace iwscan::tls
