// Analysis toolchain: aggregation, subsampling, DBSCAN, classification,
// table rendering.
#include <gtest/gtest.h>

#include "analysis/dbscan.hpp"
#include "analysis/iw_table.hpp"
#include "analysis/report.hpp"
#include "analysis/service_classify.hpp"
#include "analysis/subsample.hpp"
#include "analysis/table_writer.hpp"
#include "inetmodel/as_registry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace iwscan::analysis {
namespace {

core::HostScanRecord make_record(std::uint32_t ip, core::HostOutcome outcome,
                                 std::uint32_t iw = 0, std::uint32_t bound = 0) {
  core::HostScanRecord record;
  record.ip = net::IPv4Address{ip};
  record.outcome = outcome;
  record.iw_segments = iw;
  record.lower_bound = bound;
  return record;
}

// ------------------------------------------------------------ iw_table ---

TEST(Summarize, CountsOutcomes) {
  std::vector<core::HostScanRecord> records = {
      make_record(1, core::HostOutcome::Success, 10),
      make_record(2, core::HostOutcome::Success, 4),
      make_record(3, core::HostOutcome::FewData, 0, 7),
      make_record(4, core::HostOutcome::Error),
      make_record(5, core::HostOutcome::Unreachable),
  };
  const auto summary = summarize(records);
  EXPECT_EQ(summary.probed, 5u);
  EXPECT_EQ(summary.reachable, 4u);
  EXPECT_EQ(summary.success, 2u);
  EXPECT_EQ(summary.few_data, 1u);
  EXPECT_EQ(summary.error, 1u);
  EXPECT_DOUBLE_EQ(summary.success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(summary.few_data_rate(), 0.25);
}

TEST(Summarize, EmptyIsSafe) {
  const auto summary = summarize({});
  EXPECT_EQ(summary.reachable, 0u);
  EXPECT_DOUBLE_EQ(summary.success_rate(), 0.0);
}

TEST(IwHistogram, OnlySuccessesCount) {
  std::vector<core::HostScanRecord> records = {
      make_record(1, core::HostOutcome::Success, 10),
      make_record(2, core::HostOutcome::Success, 10),
      make_record(3, core::HostOutcome::Success, 2),
      make_record(4, core::HostOutcome::FewData, 0, 10),
  };
  const auto histogram = iw_histogram(records);
  EXPECT_EQ(histogram.at(10), 2u);
  EXPECT_EQ(histogram.at(2), 1u);
  EXPECT_EQ(histogram.size(), 2u);

  const auto fractions = iw_fractions(records);
  EXPECT_NEAR(fractions.at(10), 2.0 / 3.0, 1e-12);
}

TEST(DominantIws, FiltersBelowThreshold) {
  std::map<std::uint32_t, double> fractions = {
      {10, 0.90}, {2, 0.095}, {64, 0.0009}, {25, 0.004}};
  const auto dominant = dominant_iws(fractions, 0.001);
  EXPECT_TRUE(dominant.contains(10));
  EXPECT_TRUE(dominant.contains(2));
  EXPECT_TRUE(dominant.contains(25));
  EXPECT_FALSE(dominant.contains(64));
}

TEST(FewDataLowerBounds, NormalizedOverFewDataOnly) {
  std::vector<core::HostScanRecord> records = {
      make_record(1, core::HostOutcome::FewData, 0, 7),
      make_record(2, core::HostOutcome::FewData, 0, 7),
      make_record(3, core::HostOutcome::FewData, 0, 0),  // NoData
      make_record(4, core::HostOutcome::Success, 10),
  };
  const auto bounds = few_data_lower_bounds(records);
  EXPECT_NEAR(bounds.at(7), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(bounds.at(0), 1.0 / 3.0, 1e-12);
}

TEST(L1Distance, HandlesDisjointKeys) {
  std::map<std::uint32_t, double> a = {{1, 0.5}, {2, 0.5}};
  std::map<std::uint32_t, double> b = {{2, 0.5}, {3, 0.5}};
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(l1_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(l1_distance({}, b), 1.0);
}

// ------------------------------------------------------------ subsample --

std::vector<core::HostScanRecord> synthetic_population(int n) {
  std::vector<core::HostScanRecord> records;
  records.reserve(static_cast<std::size_t>(n));
  util::Rng rng(1234);
  for (int i = 0; i < n; ++i) {
    const double r = rng.uniform01();
    std::uint32_t iw = r < 0.55 ? 10 : (r < 0.75 ? 2 : (r < 0.9 ? 4 : 1));
    records.push_back(
        make_record(static_cast<std::uint32_t>(i + 1), core::HostOutcome::Success, iw));
  }
  return records;
}

TEST(Subsample, FractionAndDeterminism) {
  const auto population = synthetic_population(20'000);
  const auto a = subsample(population, 0.1, 77);
  const auto b = subsample(population, 0.1, 77);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NEAR(a.size() / 20'000.0, 0.1, 0.01);
  const auto full = subsample(population, 1.0, 77);
  EXPECT_EQ(full.size(), population.size());
}

TEST(Subsample, OnePercentDistributionIsStable) {
  // The §4.1 claim, as a property test: on a 20k-host population every 1%
  // sample's IW distribution is within a small L1 distance of the truth.
  const auto population = synthetic_population(20'000);
  const auto reference = iw_fractions(population);
  const auto band = subsample_band(population, 0.01, 30, 0.99, 5, reference);
  EXPECT_LT(band.max_l1_to_reference, 0.25);
  // The mean across samples is much tighter.
  EXPECT_LT(l1_distance(band.mean, reference), 0.05);
  // Quantile band brackets the mean.
  for (const auto& [iw, mean] : band.mean) {
    EXPECT_LE(band.quantile_lo.at(iw), mean + 1e-9);
    EXPECT_GE(band.quantile_hi.at(iw), mean - 1e-9);
  }
}

TEST(Subsample, LargerSamplesConvergeFaster) {
  const auto population = synthetic_population(20'000);
  const auto reference = iw_fractions(population);
  const auto band1 = subsample_band(population, 0.01, 20, 0.99, 5, reference);
  const auto band30 = subsample_band(population, 0.3, 20, 0.99, 5, reference);
  EXPECT_LT(band30.max_l1_to_reference, band1.max_l1_to_reference);
}

// --------------------------------------------------------------- dbscan --

TEST(Dbscan, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  util::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    points.push_back({0.0 + rng.uniform01() * 0.05, 0.0 + rng.uniform01() * 0.05});
  }
  for (int i = 0; i < 20; ++i) {
    points.push_back({1.0 + rng.uniform01() * 0.05, 1.0 + rng.uniform01() * 0.05});
  }
  points.push_back({0.5, 0.5});  // isolated noise

  const auto labels = dbscan(points, DbscanParams{0.1, 3});
  EXPECT_EQ(cluster_count(labels), 2);
  EXPECT_EQ(labels[40], kDbscanNoise);
  for (int i = 1; i < 20; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 21; i < 40; ++i) EXPECT_EQ(labels[static_cast<std::size_t>(i)], labels[20]);
  EXPECT_NE(labels[0], labels[20]);
}

TEST(Dbscan, AllNoiseWhenSparse) {
  std::vector<std::vector<double>> points = {{0, 0}, {5, 5}, {10, 10}};
  const auto labels = dbscan(points, DbscanParams{0.5, 2});
  for (const int label : labels) EXPECT_EQ(label, kDbscanNoise);
  EXPECT_EQ(cluster_count(labels), 0);
}

TEST(Dbscan, SingleDenseBlob) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) points.push_back({i * 0.01});
  const auto labels = dbscan(points, DbscanParams{0.05, 3});
  EXPECT_EQ(cluster_count(labels), 1);
  for (const int label : labels) EXPECT_EQ(label, 0);
}

TEST(Dbscan, EmptyInput) {
  const auto labels = dbscan({}, DbscanParams{});
  EXPECT_TRUE(labels.empty());
  EXPECT_EQ(cluster_count(labels), 0);
}

TEST(Dbscan, ChainsThroughDensityConnectivity) {
  // Points in a line, each within epsilon of the next → one cluster.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 30; ++i) points.push_back({i * 0.08});
  const auto labels = dbscan(points, DbscanParams{0.1, 3});
  EXPECT_EQ(cluster_count(labels), 1);
}

// ----------------------------------------------------- classification ----

TEST(ServiceClassifier, TaggedRangesWin) {
  const auto registry = model::AsRegistry::standard(18);
  ServiceClassifier classifier(registry, nullptr);

  const auto ip_of = [&](const char* name) {
    return registry.by_name(name)->prefixes.front().at(10);
  };
  EXPECT_EQ(classifier.classify(ip_of("Akamai")), ServiceClass::Akamai);
  EXPECT_EQ(classifier.classify(ip_of("Amazon-EC2")), ServiceClass::Ec2);
  EXPECT_EQ(classifier.classify(ip_of("Cloudflare")), ServiceClass::Cloudflare);
  EXPECT_EQ(classifier.classify(ip_of("Microsoft-Azure")), ServiceClass::Azure);
  EXPECT_EQ(classifier.classify(ip_of("GoDaddy")), ServiceClass::Other);
}

TEST(ServiceClassifier, AccessRequiresIpEncodingAndIspHints) {
  const auto registry = model::AsRegistry::standard(18);
  const auto comcast_ip = registry.by_name("Comcast")->prefixes.front().at(999);

  // rDNS that encodes the IP and carries an ISP keyword → access.
  ServiceClassifier access(registry, [&](net::IPv4Address ip) {
    return "customer-" + std::to_string(ip.octet(0)) + "-" +
           std::to_string(ip.octet(1)) + "-" + std::to_string(ip.octet(2)) + "-" +
           std::to_string(ip.octet(3)) + ".dsl.example";
  });
  EXPECT_EQ(access.classify(comcast_ip), ServiceClass::AccessNetwork);

  // IP-encoding alone (server-farm style) is NOT access.
  ServiceClassifier farm(registry, [&](net::IPv4Address ip) {
    return "node-" + std::to_string(ip.octet(0)) + "-" +
           std::to_string(ip.octet(1)) + "-" + std::to_string(ip.octet(2)) + "-" +
           std::to_string(ip.octet(3)) + ".examplefarm.test";
  });
  EXPECT_EQ(farm.classify(comcast_ip), ServiceClass::Other);

  // Keyword without IP encoding is not enough either.
  ServiceClassifier keyword_only(registry, [](net::IPv4Address) {
    return std::string("static.dialin.example");
  });
  EXPECT_EQ(keyword_only.classify(comcast_ip), ServiceClass::Other);

  // No rDNS at all.
  ServiceClassifier no_rdns(registry, [](net::IPv4Address) { return std::string(); });
  EXPECT_EQ(no_rdns.classify(comcast_ip), ServiceClass::Other);
}

TEST(ServiceClassifier, RdnsIpEncodingVariants) {
  const net::IPv4Address ip{81, 14, 7, 200};
  EXPECT_TRUE(ServiceClassifier::rdns_encodes_ip("x-81-14-7-200.dyn.isp", ip));
  EXPECT_TRUE(ServiceClassifier::rdns_encodes_ip("81.14.7.200.pool.isp", ip));
  EXPECT_TRUE(ServiceClassifier::rdns_encodes_ip("200-7-14-81.rev.isp", ip));
  EXPECT_TRUE(ServiceClassifier::rdns_encodes_ip("h81_14_7_200.isp", ip));
  EXPECT_FALSE(ServiceClassifier::rdns_encodes_ip("www.example.net", ip));
  EXPECT_FALSE(ServiceClassifier::rdns_encodes_ip("x-81-14-7.isp", ip));
}

// ------------------------------------------------------------- tables ----

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "long-header"});
  table.add_row({"xxxxxx", "1"});
  table.add_row({"y", "2"});
  const std::string out = table.render();
  const auto lines = util::split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  // Same column start for all rows: "long-header" begins where "1"/"2" do.
  const auto pos_header = lines[0].find("long-header");
  EXPECT_EQ(lines[2].find('1'), pos_header);
  EXPECT_EQ(lines[3].find('2'), pos_header);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable table({"name", "value"});
  table.add_row({"with,comma", "with\"quote"});
  const std::string csv = table.csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(50.0), "50.0");
}

TEST(RenderReport, ContainsAllSections) {
  const auto registry = model::AsRegistry::standard(16);
  std::vector<core::HostScanRecord> http = {
      make_record(registry.by_name("Cloudflare")->prefixes.front().at(5).value(),
                  core::HostOutcome::Success, 10),
      make_record(registry.by_name("Comcast")->prefixes.front().at(900).value(),
                  core::HostOutcome::Success, 2),
      make_record(registry.by_name("Comcast")->prefixes.front().at(901).value(),
                  core::HostOutcome::FewData, 0, 7),
  };
  std::vector<core::HostScanRecord> tls = {
      make_record(registry.by_name("Akamai")->prefixes.front().at(9).value(),
                  core::HostOutcome::Success, 4),
  };

  ServiceClassifier::RdnsFn rdns = [](net::IPv4Address) { return std::string(); };
  ScanInputs inputs;
  inputs.http = http;
  inputs.tls = tls;
  inputs.registry = &registry;
  inputs.rdns = rdns;
  inputs.sample_fraction = 0.01;

  ReportOptions options;
  options.dominant_threshold = 0.0;
  const std::string report = render_report(inputs, options);
  EXPECT_NE(report.find("Dataset"), std::string::npos);
  EXPECT_NE(report.find("Initial window distribution"), std::string::npos);
  EXPECT_NE(report.find("insufficient data"), std::string::npos);
  EXPECT_NE(report.find("Per-service"), std::string::npos);
  EXPECT_NE(report.find("Cloudflare"), std::string::npos);
  EXPECT_NE(report.find("Akamai"), std::string::npos);
  EXPECT_NE(report.find("1.0% sample"), std::string::npos);
  EXPECT_NE(report.find("IW >= 7"), std::string::npos);
}

TEST(RenderReport, AnomalySectionIsOptInAndCountsHostileHosts) {
  std::vector<core::HostScanRecord> http = {
      make_record(0x0A000001, core::HostOutcome::Success, 10),
      make_record(0x0A000002, core::HostOutcome::FewData, 0, 0),
      make_record(0x0A000003, core::HostOutcome::Error, 0),
  };
  http[1].anomaly = core::ProbeAnomaly::Tarpit;
  http[2].anomaly = core::ProbeAnomaly::Slowloris;
  ScanInputs inputs;
  inputs.http = http;

  ReportOptions options;
  options.include_per_service = false;
  options.dominant_threshold = 0.0;
  const std::string silent = render_report(inputs, options);
  EXPECT_EQ(silent.find("Anomalous stacks"), std::string::npos)
      << "anomaly section must stay off by default";

  options.include_anomalies = true;
  const std::string report = render_report(inputs, options);
  EXPECT_NE(report.find("Anomalous stacks"), std::string::npos);
  EXPECT_NE(report.find("tarpit"), std::string::npos);
  EXPECT_NE(report.find("slowloris"), std::string::npos);
}

TEST(RenderReport, MarkdownModeEmitsTables) {
  std::vector<core::HostScanRecord> http = {
      make_record(1, core::HostOutcome::Success, 10)};
  ScanInputs inputs;
  inputs.http = http;
  ReportOptions options;
  options.markdown = true;
  options.include_per_service = false;
  options.dominant_threshold = 0.0;
  const std::string report = render_report(inputs, options);
  EXPECT_NE(report.find("# TCP Initial Window"), std::string::npos);
  EXPECT_NE(report.find("|---|"), std::string::npos);
  EXPECT_NE(report.find("| HTTP |"), std::string::npos);
}

TEST(RecordsToCsv, OneRowPerHostWithHeader) {
  std::vector<core::HostScanRecord> records = {
      make_record(0x0A000001, core::HostOutcome::Success, 10),
      make_record(0x0A000002, core::HostOutcome::FewData, 0, 7),
  };
  records[0].iw_bytes = 640;
  records[0].observed_mss = 64;
  records[0].iw_segments_b = 10;
  records[1].fin_seen = true;

  const std::string csv = records_to_csv(records);
  const auto lines = util::split(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(lines[0].starts_with("ip,outcome,iw_segments"));
  EXPECT_TRUE(lines[1].starts_with("10.0.0.1,success,10,640,64,0,10,0,"));
  EXPECT_TRUE(lines[2].starts_with("10.0.0.2,few-data,0,0,0,7,0,1,"));
}

}  // namespace
}  // namespace iwscan::analysis
