// Multi-probe host sessions: 3-probe agreement, dual-MSS byte-limit
// detection, redirect and long-URI escalation (§3.2, §4).
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace iwscan {
namespace {

using test::Testbed;

core::IwScanConfig http_config() {
  core::IwScanConfig config;
  config.protocol = core::ProbeProtocol::Http;
  config.port = 80;
  return config;
}

core::IwScanConfig tls_config() {
  core::IwScanConfig config;
  config.protocol = core::ProbeProtocol::Tls;
  config.port = 443;
  return config;
}

tcp::StackConfig stack_with_iw(std::uint32_t segments,
                               tcp::OsProfile os = tcp::OsProfile::Linux) {
  tcp::StackConfig stack;
  stack.os = os;
  stack.iw = tcp::IwConfig::segments_of(segments);
  return stack;
}

http::WebConfig big_page(std::size_t bytes) {
  http::WebConfig web;
  web.root = http::RootBehavior::Page;
  web.page_size = bytes;
  return web;
}

TEST(HostProber, SuccessWithAgreementAcrossSixProbes) {
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 1};
  bed.add_http_host(host, stack_with_iw(10), big_page(16'000));

  const auto record = bed.probe_host(host, http_config());
  EXPECT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_EQ(record.iw_segments, 10u);
  EXPECT_EQ(record.probes_run, 6);  // 3 probes × 2 MSS values
  EXPECT_EQ(record.iw_segments_b, 10u) << "segment-based IW is MSS-invariant";
}

TEST(HostProber, ByteLimitedHostDetectedViaDualMss) {
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 2};
  tcp::StackConfig stack;
  stack.iw = tcp::IwConfig::bytes_of(4096);
  bed.add_http_host(host, stack, big_page(12'000));

  const auto record = bed.probe_host(host, http_config());
  ASSERT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_EQ(record.iw_segments, 64u);
  EXPECT_EQ(record.iw_segments_b, 32u);
  EXPECT_TRUE(record.byte_limited());
}

TEST(HostProber, SegmentHostIsNotByteLimited) {
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 3};
  bed.add_http_host(host, stack_with_iw(4), big_page(8'000));

  const auto record = bed.probe_host(host, http_config());
  ASSERT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_FALSE(record.byte_limited());
}

TEST(HostProber, RedirectIsFollowedToSuccess) {
  // "/" answers 301 with a Location; the follow-up connection fetches the
  // large canonical page and fills the IW.
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 4};
  http::WebConfig web;
  web.root = http::RootBehavior::RedirectToName;
  web.canonical_name = "www.redirect-target.test";
  web.redirected_page_size = 16'000;
  bed.add_http_host(host, stack_with_iw(10), web);

  const auto record = bed.probe_host(host, http_config());
  EXPECT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_EQ(record.iw_segments, 10u);
  EXPECT_GT(record.connections_used, 6)
      << "each probe needs the redirect follow-up connection";
}

TEST(HostProber, LongUriBloatsEchoingErrorPages) {
  // 404-echo host: "/" yields a tiny 404, but the bloated URI inflates the
  // error response beyond the IW (§3.2).
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 5};
  http::WebConfig web;
  web.root = http::RootBehavior::NotFoundEcho;
  bed.add_http_host(host, stack_with_iw(10), web);

  const auto record = bed.probe_host(host, http_config());
  EXPECT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_EQ(record.iw_segments, 10u);
}

TEST(HostProber, NonEchoing404StaysFewData) {
  // The "Akamai change": when the error page stops echoing the URI, the
  // host can no longer be pushed to success.
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 6};
  http::WebConfig web;
  web.root = http::RootBehavior::NotFoundPlain;
  bed.add_http_host(host, stack_with_iw(10), web);

  const auto record = bed.probe_host(host, http_config());
  EXPECT_EQ(record.outcome, core::HostOutcome::FewData);
  EXPECT_GE(record.lower_bound, 1u);
  EXPECT_LE(record.lower_bound, 10u);
}

TEST(HostProber, UnreachableHostShortCircuits) {
  Testbed bed;
  const auto record = bed.probe_host(net::IPv4Address{10, 1, 0, 7}, http_config());
  EXPECT_EQ(record.outcome, core::HostOutcome::Unreachable);
  EXPECT_EQ(record.probes_run, 1) << "no point probing a dead host six times";
}

TEST(HostProber, AbortingHostIsError) {
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 8};
  // An HTTP host that resets every connection as soon as data arrives.
  class AbortApp final : public tcp::Application {
   public:
    void on_data(tcp::TcpConnection& conn, std::span<const std::uint8_t>) override {
      conn.abort();
    }
  };
  auto host_obj = std::make_unique<tcp::TcpHost>(bed.network(), host,
                                                 stack_with_iw(10), 7);
  host_obj->listen(80, [](net::IPv4Address, std::uint16_t) {
    return std::make_unique<AbortApp>();
  });
  bed.network().attach(host, host_obj.get());

  const auto record = bed.probe_host(host, http_config());
  EXPECT_EQ(record.outcome, core::HostOutcome::Error);
  bed.network().detach(host);
}

TEST(HostProber, TlsHostEndToEnd) {
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 9};
  tls::TlsConfig config;
  config.chain_bytes = 3'000;
  bed.add_tls_host(host, stack_with_iw(4), config);

  const auto record = bed.probe_host(host, tls_config());
  ASSERT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_EQ(record.iw_segments, 4u);
  EXPECT_EQ(record.iw_segments_b, 4u);
}

TEST(HostProber, TailLossIsAbsorbedByMaximumRule) {
  // With moderate loss, individual probes may underestimate; the ≥2-of-3 +
  // maximum rule should still usually recover IW 10 or fail gracefully —
  // and must never report > 10.
  int successes = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Testbed bed(1000 + static_cast<std::uint64_t>(trial));
    const net::IPv4Address host{10, 1, 1, static_cast<std::uint8_t>(trial + 1)};
    bed.add_http_host(host, stack_with_iw(10), big_page(16'000));
    sim::PathConfig path = bed.network().default_path();
    path.loss_rate = 0.03;
    bed.network().set_path(host, path);

    const auto record = bed.probe_host(host, http_config());
    if (record.outcome == core::HostOutcome::Success) {
      ++successes;
      EXPECT_LE(record.iw_segments, 10u);
    }
  }
  EXPECT_GE(successes, 7) << "3% loss should rarely defeat the 3-probe rule";
}

TEST(HostProber, SingleMssModeSkipsSecondPass) {
  Testbed bed;
  const net::IPv4Address host{10, 1, 0, 10};
  bed.add_http_host(host, stack_with_iw(10), big_page(16'000));

  core::IwScanConfig config = http_config();
  config.mss_secondary = 0;
  const auto record = bed.probe_host(host, config);
  EXPECT_EQ(record.outcome, core::HostOutcome::Success);
  EXPECT_EQ(record.probes_run, 3);
  EXPECT_EQ(record.iw_segments_b, 0u);
}

}  // namespace
}  // namespace iwscan
