// Server-side TCP stack: handshake, OS MSS clamping, IW policies, slow
// start, RTO retransmission, FIN placement, RST paths — the sender
// behaviours the whole measurement methodology rests on.
#include <gtest/gtest.h>

#include <deque>

#include "httpd/http_server.hpp"
#include "netsim/network.hpp"
#include "tcpstack/host.hpp"
#include "tcpstack/seq.hpp"

namespace iwscan::tcp {
namespace {

const net::IPv4Address kClientIp{192, 0, 2, 9};
const net::IPv4Address kHostIp{10, 0, 0, 1};

/// Raw segment-level client: crafts exact segments, records replies.
class RawClient final : public sim::Endpoint {
 public:
  explicit RawClient(sim::Network& network) : network_(network) {
    network_.attach(kClientIp, this);
  }
  ~RawClient() override { network_.detach(kClientIp); }

  void handle_packet(net::PacketView bytes) override {
    auto datagram = net::decode_datagram(bytes);
    ASSERT_TRUE(datagram.has_value());
    if (auto* segment = std::get_if<net::TcpSegment>(&*datagram)) {
      received.push_back(std::move(*segment));
    }
  }

  void send(std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
            std::uint16_t window, net::Bytes payload = {},
            std::optional<std::uint16_t> mss = std::nullopt,
            std::uint16_t dst_port = 80) {
    net::TcpSegment segment;
    segment.ip.src = kClientIp;
    segment.ip.dst = kHostIp;
    segment.tcp.src_port = 40000;
    segment.tcp.dst_port = dst_port;
    segment.tcp.seq = seq;
    segment.tcp.ack = ack;
    segment.tcp.flags = flags;
    segment.tcp.window = window;
    if (mss) segment.tcp.options.push_back(net::MssOption{*mss});
    segment.payload = std::move(payload);
    network_.send(net::encode(segment));
  }

  /// Data segments received (non-empty payload).
  [[nodiscard]] std::vector<const net::TcpSegment*> data_segments() const {
    std::vector<const net::TcpSegment*> out;
    for (const auto& segment : received) {
      if (!segment.payload.empty()) out.push_back(&segment);
    }
    return out;
  }

  [[nodiscard]] const net::TcpSegment* syn_ack() const {
    for (const auto& segment : received) {
      if (segment.tcp.has(net::kSyn) && segment.tcp.has(net::kAck)) return &segment;
    }
    return nullptr;
  }

  std::vector<net::TcpSegment> received;

 private:
  sim::Network& network_;
};

/// App that immediately sends a fixed payload (optionally closing after).
class FixedResponseApp final : public Application {
 public:
  FixedResponseApp(std::size_t bytes, bool close) : bytes_(bytes), close_(close) {}
  void on_data(TcpConnection& conn, std::span<const std::uint8_t>) override {
    if (sent_) return;
    sent_ = true;
    const std::string body(bytes_, 'D');
    conn.send(body);
    if (close_) conn.close();
  }

 private:
  std::size_t bytes_;
  bool close_;
  bool sent_ = false;
};

struct Rig {
  sim::EventLoop loop;
  sim::Network network{loop, 5};
  std::unique_ptr<TcpHost> host;
  std::unique_ptr<RawClient> client;

  explicit Rig(StackConfig config, std::size_t response_bytes = 10'000,
               bool close_after = false) {
    sim::PathConfig path;
    path.latency = sim::msec(5);
    network.set_default_path(path);
    host = std::make_unique<TcpHost>(network, kHostIp, config, 77);
    host->listen(80, [response_bytes, close_after](net::IPv4Address, std::uint16_t) {
      return std::make_unique<FixedResponseApp>(response_bytes, close_after);
    });
    network.attach(kHostIp, host.get());
    client = std::make_unique<RawClient>(network);
  }

  /// SYN → SYN/ACK → ACK+request; returns the server ISN.
  std::uint32_t open_and_request(std::uint16_t mss, std::uint16_t window = 65535) {
    client->send(1000, 0, net::kSyn, window, {}, mss);
    loop.run_until(loop.now() + sim::msec(50));
    const auto* syn_ack = client->syn_ack();
    EXPECT_NE(syn_ack, nullptr);
    if (!syn_ack) return 0;
    const std::uint32_t server_isn = syn_ack->tcp.seq;
    client->send(1001, server_isn + 1, net::kAck | net::kPsh, window,
                 net::to_bytes("PING"));
    return server_isn;
  }
};

StackConfig config_with_iw(std::uint32_t segments,
                           OsProfile os = OsProfile::Linux) {
  StackConfig config;
  config.os = os;
  config.iw = IwConfig::segments_of(segments);
  return config;
}

// ------------------------------------------------------- seq helpers -----

TEST(SeqArithmetic, WrapAround) {
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_TRUE(seq_ge(5u, 5u));
  EXPECT_EQ(seq_diff(0x10u, 0xfffffff0u), 0x20u);
}

// ------------------------------------------------------- handshake -------

TEST(TcpStack, HandshakeAnnouncesOwnMss) {
  Rig rig(config_with_iw(10));
  rig.client->send(1000, 0, net::kSyn, 65535, {}, 64);
  rig.loop.run_until(sim::msec(100));
  const auto* syn_ack = rig.client->syn_ack();
  ASSERT_NE(syn_ack, nullptr);
  EXPECT_EQ(syn_ack->tcp.ack, 1001u);
  EXPECT_EQ(net::find_mss(syn_ack->tcp.options), 1460);
  EXPECT_FALSE(net::has_sack_permitted(syn_ack->tcp.options));
}

TEST(TcpStack, ClosedPortAnswersRst) {
  Rig rig(config_with_iw(10));
  rig.client->send(1000, 0, net::kSyn, 65535, {}, 64, /*dst_port=*/81);
  rig.loop.run_until(sim::msec(100));
  ASSERT_EQ(rig.client->received.size(), 1u);
  EXPECT_TRUE(rig.client->received[0].tcp.has(net::kRst));
  EXPECT_EQ(rig.client->received[0].tcp.ack, 1001u);
}

TEST(TcpStack, FilteredModeDropsSilently) {
  StackConfig config = config_with_iw(10);
  config.reset_on_closed_port = false;
  Rig rig(config);
  rig.client->send(1000, 0, net::kSyn, 65535, {}, 64, /*dst_port=*/81);
  rig.loop.run_until(sim::msec(100));
  EXPECT_TRUE(rig.client->received.empty());
}

TEST(TcpStack, RetransmittedSynGetsSynAckAgain) {
  Rig rig(config_with_iw(10));
  rig.client->send(1000, 0, net::kSyn, 65535, {}, 64);
  rig.loop.run_until(sim::msec(50));
  rig.client->send(1000, 0, net::kSyn, 65535, {}, 64);  // dup SYN
  rig.loop.run_until(sim::msec(100));
  int syn_acks = 0;
  for (const auto& segment : rig.client->received) {
    if (segment.tcp.has(net::kSyn)) ++syn_acks;
  }
  EXPECT_EQ(syn_acks, 2);
}

// -------------------------------------------------- IW burst behaviour ---

class IwBurst : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IwBurst, InitialBurstIsExactlyIwSegments) {
  const std::uint32_t iw = GetParam();
  Rig rig(config_with_iw(iw), 64 * 1024);
  rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));  // before the 1 s RTO

  const auto data = rig.client->data_segments();
  ASSERT_EQ(data.size(), iw) << "burst must be exactly the IW";
  for (const auto* segment : data) {
    EXPECT_LE(segment->payload.size(), 64u);
  }
}

INSTANTIATE_TEST_SUITE_P(CommonIws, IwBurst,
                         ::testing::Values(1u, 2u, 3u, 4u, 10u, 16u, 48u));

TEST(TcpStack, LinuxClampsTinyMssTo64) {
  Rig rig(config_with_iw(4), 64 * 1024);
  rig.open_and_request(16);  // announce an absurd 16 B
  rig.loop.run_until(sim::msec(300));
  const auto data = rig.client->data_segments();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0]->payload.size(), 64u) << "Linux refuses MSS < 64";
}

TEST(TcpStack, WindowsClampsTo536) {
  Rig rig(config_with_iw(10, OsProfile::Windows), 64 * 1024);
  rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  const auto data = rig.client->data_segments();
  ASSERT_EQ(data.size(), 10u);
  EXPECT_EQ(data[0]->payload.size(), 536u);
}

TEST(TcpStack, PermissiveUsesAnnouncedMss) {
  StackConfig config;
  config.os = OsProfile::Permissive;
  config.iw = IwConfig::segments_of(4);
  Rig rig(config, 64 * 1024);
  rig.open_and_request(48);
  rig.loop.run_until(sim::msec(300));
  const auto data = rig.client->data_segments();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0]->payload.size(), 48u);
}

TEST(TcpStack, ByteIwSendsBudgetWorthOfSegments) {
  StackConfig config;
  config.iw = IwConfig::bytes_of(1536);
  Rig rig(config, 64 * 1024);
  rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  EXPECT_EQ(rig.client->data_segments().size(), 24u);  // 1536 / 64
}

TEST(TcpStack, FlowControlCapsBelowIw) {
  // Peer window of 3 segments < IW 10: flow control must win.
  Rig rig(config_with_iw(10), 64 * 1024);
  rig.open_and_request(64, /*window=*/192);
  rig.loop.run_until(sim::msec(300));
  EXPECT_EQ(rig.client->data_segments().size(), 3u);
}

// -------------------------------------------- RTO and retransmission -----

TEST(TcpStack, RtoRetransmitsFirstUnackedSegmentOnly) {
  Rig rig(config_with_iw(10), 64 * 1024);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  const std::size_t burst = rig.client->data_segments().size();
  ASSERT_EQ(burst, 10u);

  rig.loop.run_until(sim::msec(1600));  // past the 1 s RTO
  const auto data = rig.client->data_segments();
  ASSERT_EQ(data.size(), 11u) << "exactly one retransmission";
  EXPECT_EQ(data.back()->tcp.seq, isn + 1) << "must be the FIRST segment";
}

TEST(TcpStack, RtoBacksOffExponentially) {
  Rig rig(config_with_iw(2), 64 * 1024);
  rig.open_and_request(64);
  rig.loop.run_until(sim::sec(8));
  // Retransmissions at ~1, 3, 7 s after the burst → at least 3 by 8 s.
  const auto data = rig.client->data_segments();
  int first_seg_copies = 0;
  for (const auto* segment : data) {
    if (segment->tcp.seq == data[0]->tcp.seq) ++first_seg_copies;
  }
  EXPECT_GE(first_seg_copies, 3);
  EXPECT_LE(first_seg_copies, 5);
}

TEST(TcpStack, GivesUpAfterMaxRetransmits) {
  StackConfig config = config_with_iw(2);
  config.max_retransmits = 2;
  Rig rig(config, 64 * 1024);
  rig.open_and_request(64);
  rig.loop.run_until(sim::sec(60));
  EXPECT_EQ(rig.host->active_connections(), 0u)
      << "connection must abort after retry exhaustion";
}

TEST(TcpStack, AckReleasesMoreDataAndGrowsCwnd) {
  Rig rig(config_with_iw(4), 64 * 1024);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  ASSERT_EQ(rig.client->data_segments().size(), 4u);

  // ACK the full burst with a big window: slow start doubles-ish the cwnd.
  rig.client->send(1005, isn + 1 + 4 * 64, net::kAck, 65535);
  rig.loop.run_until(sim::msec(600));
  const auto after = rig.client->data_segments().size();
  EXPECT_GE(after, 8u);   // at least 4 more released
  EXPECT_LE(after, 13u);  // bounded by slow-start growth (4 + acked)
}

TEST(TcpStack, SmallVerifyWindowReleasesTwoSegments) {
  // The estimator's 2·MSS verify window (§3.1): after acking the burst the
  // server may send at most two more segments.
  Rig rig(config_with_iw(10), 64 * 1024);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  ASSERT_EQ(rig.client->data_segments().size(), 10u);

  rig.client->send(1005, isn + 1 + 10 * 64, net::kAck, 128);
  rig.loop.run_until(sim::msec(600));
  EXPECT_EQ(rig.client->data_segments().size(), 12u);
}

// ----------------------------------------------------- FIN semantics -----

TEST(TcpStack, FinPiggybacksWhenDataFitsInIw) {
  Rig rig(config_with_iw(10), /*response=*/200, /*close=*/true);
  rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  const auto& received = rig.client->received;
  bool fin_on_last_data = false;
  for (const auto& segment : received) {
    if (!segment.payload.empty() && segment.tcp.has(net::kFin)) {
      fin_on_last_data = true;
    }
  }
  EXPECT_TRUE(fin_on_last_data)
      << "FIN must ride on the last data segment when everything fits";
}

TEST(TcpStack, NoFinWhileIwLimitsUnsentData) {
  // Response far exceeds the IW: the FIN cannot be sent while unsent data
  // queues behind the congestion window — the paper's key HTTP signal.
  Rig rig(config_with_iw(4), /*response=*/10'000, /*close=*/true);
  rig.open_and_request(64);
  rig.loop.run_until(sim::sec(4));  // burst + several RTOs, no ACKs from us
  for (const auto& segment : rig.client->received) {
    EXPECT_FALSE(segment.tcp.has(net::kFin))
        << "FIN leaked although data is still queued";
  }
}

TEST(TcpStack, FinAfterDrainWhenPeerAcksEverything) {
  Rig rig(config_with_iw(4), /*response=*/1000, /*close=*/true);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  // Keep ACKing whatever arrived until the FIN shows up.
  for (int round = 0; round < 10; ++round) {
    std::uint32_t max_end = isn + 1;
    bool fin_seen = false;
    for (const auto& segment : rig.client->received) {
      if (!segment.payload.empty()) {
        const std::uint32_t end =
            segment.tcp.seq + static_cast<std::uint32_t>(segment.payload.size());
        if (seq_gt(end, max_end)) max_end = end;
      }
      fin_seen |= segment.tcp.has(net::kFin);
    }
    if (fin_seen) break;
    rig.client->send(1005, max_end, net::kAck, 65535);
    rig.loop.run_until(rig.loop.now() + sim::msec(100));
  }
  bool fin_seen = false;
  for (const auto& segment : rig.client->received) {
    fin_seen |= segment.tcp.has(net::kFin);
  }
  EXPECT_TRUE(fin_seen);
}

// ------------------------------------------------------- RST / abort -----

TEST(TcpStack, PeerRstTearsDownConnection) {
  Rig rig(config_with_iw(10), 64 * 1024);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  EXPECT_EQ(rig.host->active_connections(), 1u);
  rig.client->send(1005, isn + 1, net::kRst | net::kAck, 0);
  rig.loop.run_until(rig.loop.now() + sim::msec(100));
  EXPECT_EQ(rig.host->active_connections(), 0u);
}

TEST(TcpStack, LateSegmentToDeadConnectionGetsRst) {
  Rig rig(config_with_iw(10), 64 * 1024);
  rig.client->send(5000, 777, net::kAck, 1024, net::to_bytes("stale"));
  rig.loop.run_until(sim::msec(100));
  ASSERT_FALSE(rig.client->received.empty());
  EXPECT_TRUE(rig.client->received.back().tcp.has(net::kRst));
}

TEST(TcpStack, IdleConnectionTimesOut) {
  StackConfig config = config_with_iw(10);
  config.idle_timeout = sim::sec(2);
  config.max_retransmits = 100;  // keep retransmitting; idle won't fire while
                                 // segments flow — so use a silent app
  Rig rig(config, 0, false);  // app responds with nothing
  rig.open_and_request(64);
  rig.loop.run_until(sim::msec(200));
  EXPECT_EQ(rig.host->active_connections(), 1u);
  rig.loop.run_until(sim::sec(10));
  EXPECT_EQ(rig.host->active_connections(), 0u);
}

TEST(TcpStack, PerPortConfigOverride) {
  // §4.3 per-service IWs: port 80 uses IW2, port 8080 IW10.
  Rig rig(config_with_iw(2), 64 * 1024);
  rig.host->listen(8080,
                   [](net::IPv4Address, std::uint16_t) {
                     return std::make_unique<FixedResponseApp>(64 * 1024, false);
                   },
                   config_with_iw(10));

  rig.open_and_request(64);
  rig.loop.run_until(sim::msec(300));
  EXPECT_EQ(rig.client->data_segments().size(), 2u);

  // Second connection to the override port.
  net::TcpSegment syn;
  rig.client->send(2000, 0, net::kSyn, 65535, {}, 64, 8080);
  rig.loop.run_until(rig.loop.now() + sim::msec(50));
  const net::TcpSegment* syn_ack = nullptr;
  for (const auto& segment : rig.client->received) {
    if (segment.tcp.has(net::kSyn) && segment.tcp.src_port == 8080) {
      syn_ack = &segment;
    }
  }
  ASSERT_NE(syn_ack, nullptr);
  rig.client->send(2001, syn_ack->tcp.seq + 1, net::kAck | net::kPsh, 65535,
                   net::to_bytes("PING"), std::nullopt, 8080);
  rig.loop.run_until(rig.loop.now() + sim::msec(300));
  std::size_t port_8080_data = 0;
  for (const auto& segment : rig.client->received) {
    if (segment.tcp.src_port == 8080 && !segment.payload.empty()) {
      ++port_8080_data;
    }
  }
  EXPECT_EQ(port_8080_data, 10u);
}

TEST(TcpStack, OutOfOrderRequestIsDroppedNotDelivered) {
  // Segment beyond rcv_nxt: server must not deliver it to the app.
  Rig rig(config_with_iw(10), 5000, false);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(50));
  const std::size_t before = rig.client->data_segments().size();
  // Send a segment with a gap (seq jumped by 100).
  rig.client->send(1200, isn + 1, net::kAck | net::kPsh, 65535,
                   net::to_bytes("GAPPED"));
  rig.loop.run_until(rig.loop.now() + sim::msec(100));
  // The app already responded once to the first request; the gapped data
  // must not create a second response burst beyond what cwnd allows.
  EXPECT_GE(rig.client->data_segments().size(), before);
  EXPECT_EQ(rig.host->active_connections(), 1u);
}

TEST(TcpStack, IcmpEchoIsAnswered) {
  Rig rig(config_with_iw(10));
  net::IcmpDatagram echo;
  echo.ip.src = kClientIp;
  echo.ip.dst = kHostIp;
  echo.icmp.type = net::IcmpType::Echo;
  echo.icmp.id_or_unused = 42;
  echo.icmp.seq_or_mtu = 7;
  echo.icmp.payload = {1, 2, 3};
  rig.network.send(net::encode(echo));
  rig.loop.run_until(sim::msec(100));
  ASSERT_EQ(rig.client->received.size(), 0u);  // no TCP
  // The echo reply is ICMP; RawClient only records TCP — check via stats.
  EXPECT_EQ(rig.network.stats().packets_delivered, 2u);  // echo + reply
}

TEST(TcpStack, PeerFinThenServerCloseRunsLastAck) {
  // Peer half-closes first (CloseWait), app answers and closes (LastAck),
  // peer ACKs the FIN → fully closed.
  Rig rig(config_with_iw(10), /*response=*/100, /*close=*/true);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(200));

  // Compute how much the server sent, ACK it all together with our FIN.
  std::uint32_t max_end = isn + 1;
  for (const auto& segment : rig.client->received) {
    if (!segment.payload.empty()) {
      const std::uint32_t end =
          segment.tcp.seq + static_cast<std::uint32_t>(segment.payload.size());
      if (seq_gt(end, max_end)) max_end = end;
    }
  }
  bool server_fin = false;
  for (const auto& segment : rig.client->received) {
    server_fin |= segment.tcp.has(net::kFin);
  }
  EXPECT_TRUE(server_fin);

  // ACK data+FIN, then send our own FIN.
  rig.client->send(1005, max_end + 1, net::kAck, 65535);
  rig.client->send(1005, max_end + 1, net::kFin | net::kAck, 65535);
  rig.loop.run_until(rig.loop.now() + sim::msec(200));
  EXPECT_EQ(rig.host->active_connections(), 0u);
}

TEST(TcpStack, ZeroWindowStallsSender) {
  Rig rig(config_with_iw(10), 64 * 1024);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(200));
  ASSERT_EQ(rig.client->data_segments().size(), 10u);

  // ACK the burst but advertise a zero window: nothing more may flow.
  rig.client->send(1005, isn + 1 + 640, net::kAck, 0);
  rig.loop.run_until(rig.loop.now() + sim::msec(500));
  EXPECT_EQ(rig.client->data_segments().size(), 10u);

  // Reopen the window: data resumes.
  rig.client->send(1005, isn + 1 + 640, net::kAck, 65535);
  rig.loop.run_until(rig.loop.now() + sim::msec(500));
  EXPECT_GT(rig.client->data_segments().size(), 10u);
}

TEST(TcpStack, DuplicateAcksDoNotInflateCwnd) {
  Rig rig(config_with_iw(4), 64 * 1024);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(200));
  ASSERT_EQ(rig.client->data_segments().size(), 4u);

  // Three duplicate ACKs of nothing new: cwnd must not grow, nothing new
  // may be sent (we do not model fast retransmit).
  for (int i = 0; i < 3; ++i) {
    rig.client->send(1005, isn + 1, net::kAck, 65535);
  }
  rig.loop.run_until(rig.loop.now() + sim::msec(300));
  EXPECT_EQ(rig.client->data_segments().size(), 4u);
}

TEST(TcpStack, PartialAckAdvancesWindow) {
  Rig rig(config_with_iw(4), 64 * 1024);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(200));
  ASSERT_EQ(rig.client->data_segments().size(), 4u);

  // ACK only the first two segments: room for ~2-3 more opens up
  // (2 acked + slow-start growth).
  rig.client->send(1005, isn + 1 + 128, net::kAck, 65535);
  rig.loop.run_until(rig.loop.now() + sim::msec(300));
  const auto count = rig.client->data_segments().size();
  EXPECT_GE(count, 6u);
  EXPECT_LE(count, 8u);
}

TEST(TcpStack, RequestRetransmissionIsReAcked) {
  // The client retransmits its request (its copy of our ACK got lost):
  // the server must answer with a pure ACK, not deliver the data twice.
  Rig rig(config_with_iw(10), 3000, false);
  const std::uint32_t isn = rig.open_and_request(64);
  rig.loop.run_until(sim::msec(200));
  const std::size_t data_before = rig.client->data_segments().size();

  rig.client->send(1001, isn + 1, net::kAck | net::kPsh, 65535,
                   net::to_bytes("PING"));
  rig.loop.run_until(rig.loop.now() + sim::msec(200));
  // No duplicate response burst (the app would have been invoked again).
  EXPECT_EQ(rig.client->data_segments().size(), data_before);
}

TEST(IwConfig, InitialCwndMath) {
  EXPECT_EQ(IwConfig::segments_of(10).initial_cwnd(64), 640u);
  EXPECT_EQ(IwConfig::segments_of(10).initial_cwnd(536), 5360u);
  EXPECT_EQ(IwConfig::bytes_of(4096).initial_cwnd(64), 4096u);
  EXPECT_EQ(IwConfig::bytes_of(4096).initial_cwnd(128), 4096u);
  // Byte budget below one MSS still allows a full segment.
  EXPECT_EQ(IwConfig::bytes_of(100).initial_cwnd(536), 536u);
}

TEST(EffectiveMss, ClampRules) {
  EXPECT_EQ(effective_mss(OsProfile::Linux, 16, 1460), 64);
  EXPECT_EQ(effective_mss(OsProfile::Linux, 64, 1460), 64);
  EXPECT_EQ(effective_mss(OsProfile::Linux, 128, 1460), 128);
  EXPECT_EQ(effective_mss(OsProfile::Windows, 64, 1460), 536);
  EXPECT_EQ(effective_mss(OsProfile::Windows, 535, 1460), 536);
  EXPECT_EQ(effective_mss(OsProfile::Windows, 1400, 1460), 1400);
  EXPECT_EQ(effective_mss(OsProfile::Permissive, 16, 1460), 16);
  // Own interface limit always caps.
  EXPECT_EQ(effective_mss(OsProfile::Linux, 9000, 1460), 1460);
}

}  // namespace
}  // namespace iwscan::tcp
