// Seeded-deterministic mutational fuzz driver for the wire codecs.
//
// Each driver supplies (a) a corpus of well-formed seed inputs built with
// the project's own encoders and (b) a `fuzz_one` callback that must not
// crash, hang, or trip a sanitizer on ANY byte string. The harness then
// replays `iterations` mutated inputs (default 10000), derived purely from
// a base seed, so every run — and every failure — is bit-reproducible.
//
// Reproducing a failure:
//   1. Re-run with IWSCAN_FUZZ_TRACE=1: each case index is printed before
//      it executes, so the last line names the crashing case.
//   2. Replay exactly that case with `<driver> --case <index> [base_seed]`;
//      it hexdumps the input and runs it alone (attach gdb / ASan here).
//
// Under IWSCAN_LIBFUZZER the same fuzz_one becomes an
// LLVMFuzzerTestOneInput entry point for coverage-guided runs with Clang.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

namespace iwscan::fuzz {

using Input = std::vector<std::uint8_t>;

/// splitmix64: tiny, seedable, and identical on every platform — exactly
/// what reproducible corpus replay needs (std::mt19937 would also do, but
/// its distributions are not portable across standard libraries).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-ish value in [0, bound); bound must be nonzero.
  std::size_t below(std::size_t bound) noexcept { return next() % bound; }

 private:
  std::uint64_t state_;
};

inline constexpr std::uint64_t kDefaultBaseSeed = 0x1575CA11'2017ULL;
inline constexpr std::size_t kDefaultIterations = 10000;
inline constexpr std::size_t kMaxInputSize = 8192;

/// One mutation step over `data` (in place). Operators mirror the classic
/// libFuzzer set: bit flips, byte stores, interesting values, insertions,
/// erasures, duplications, truncation, length-field smashing, splicing.
inline void mutate(Input& data, Rng& rng, const std::vector<Input>& corpus) {
  static constexpr std::uint8_t kInteresting[] = {0x00, 0x01, 0x02, 0x10,
                                                  0x7f, 0x80, 0xfe, 0xff};
  switch (rng.below(10)) {
    case 0:  // flip one bit
      if (!data.empty()) data[rng.below(data.size())] ^= 1u << rng.below(8);
      break;
    case 1:  // store a random byte
      if (!data.empty()) {
        data[rng.below(data.size())] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 2:  // store an interesting byte
      if (!data.empty()) {
        data[rng.below(data.size())] = kInteresting[rng.below(sizeof(kInteresting))];
      }
      break;
    case 3: {  // insert 1–8 random bytes
      const std::size_t count = 1 + rng.below(8);
      if (data.size() + count > kMaxInputSize) break;
      const std::size_t at = data.empty() ? 0 : rng.below(data.size() + 1);
      Input chunk(count);
      for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next());
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
                  chunk.end());
      break;
    }
    case 4: {  // erase a random range
      if (data.empty()) break;
      const std::size_t at = rng.below(data.size());
      const std::size_t len = 1 + rng.below(data.size() - at);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(at),
                 data.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
    case 5: {  // duplicate a range back into the buffer
      if (data.empty()) break;
      const std::size_t at = rng.below(data.size());
      const std::size_t len = 1 + rng.below(data.size() - at);
      if (data.size() + len > kMaxInputSize) break;
      const Input chunk(data.begin() + static_cast<std::ptrdiff_t>(at),
                        data.begin() + static_cast<std::ptrdiff_t>(at + len));
      const std::size_t dest = rng.below(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(dest), chunk.begin(),
                  chunk.end());
      break;
    }
    case 6:  // truncate
      if (!data.empty()) data.resize(rng.below(data.size() + 1));
      break;
    case 7: {  // smash a 16-bit big-endian field with an extreme length
      if (data.size() < 2) break;
      static constexpr std::uint16_t kLengths[] = {0x0000, 0x0001, 0x00ff, 0x0100,
                                                   0x3fff, 0x4000, 0x7fff, 0x8000,
                                                   0xfffe, 0xffff};
      const std::uint16_t v = kLengths[rng.below(sizeof(kLengths) / 2)];
      const std::size_t at = rng.below(data.size() - 1);
      data[at] = static_cast<std::uint8_t>(v >> 8);
      data[at + 1] = static_cast<std::uint8_t>(v);
      break;
    }
    case 8: {  // append random bytes
      const std::size_t count = 1 + rng.below(16);
      if (data.size() + count > kMaxInputSize) break;
      for (std::size_t i = 0; i < count; ++i) {
        data.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      break;
    }
    case 9: {  // splice a window from another corpus seed
      if (corpus.empty()) break;
      const Input& donor = corpus[rng.below(corpus.size())];
      if (donor.empty()) break;
      const std::size_t at = rng.below(donor.size());
      const std::size_t len = 1 + rng.below(donor.size() - at);
      if (data.size() + len > kMaxInputSize) break;
      const std::size_t dest = data.empty() ? 0 : rng.below(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(dest),
                  donor.begin() + static_cast<std::ptrdiff_t>(at),
                  donor.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
    default:
      break;
  }
}

/// Build the input for case `index` from the corpus — pure function of
/// (base_seed, index, corpus), which is what makes --case replay exact.
inline Input build_case(std::uint64_t base_seed, std::size_t index,
                        const std::vector<Input>& corpus) {
  Rng rng(base_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  Input data;
  if (!corpus.empty() && rng.below(16) != 0) {  // 1/16 cases start from scratch
    data = corpus[rng.below(corpus.size())];
  }
  const std::size_t rounds = 1 + rng.below(6);
  for (std::size_t i = 0; i < rounds; ++i) mutate(data, rng, corpus);
  return data;
}

inline void hexdump(const Input& data) {
  for (std::size_t i = 0; i < data.size(); i += 16) {
    std::fprintf(stderr, "%06zx ", i);
    for (std::size_t j = i; j < i + 16 && j < data.size(); ++j) {
      std::fprintf(stderr, " %02x", data[j]);
    }
    std::fprintf(stderr, "\n");
  }
}

using FuzzOne = void (*)(std::span<const std::uint8_t>);

/// strtoull that rejects garbage instead of quietly yielding 0 — a mistyped
/// case index must not replay case 0 and print "survived".
inline bool parse_u64_arg(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 0);
  return end != text && *end == '\0';
}

/// CLI: <driver> [iterations] [base_seed]  — corpus replay (ctest mode)
///      <driver> --case <index> [base_seed] — replay a single case
inline int run_driver(int argc, char** argv, FuzzOne one,
                      const std::vector<Input>& corpus) {
  std::uint64_t base_seed = kDefaultBaseSeed;
  std::uint64_t iterations = kDefaultIterations;

  if (argc >= 2 && std::strcmp(argv[1], "--case") == 0) {
    std::uint64_t index = 0;
    if (argc < 3 || !parse_u64_arg(argv[2], index) ||
        (argc >= 4 && !parse_u64_arg(argv[3], base_seed))) {
      std::fprintf(stderr, "usage: %s --case <index> [base_seed]\n", argv[0]);
      return 2;
    }
    const Input data = build_case(base_seed, index, corpus);
    std::fprintf(stderr, "case %zu (seed 0x%" PRIx64 "), %zu bytes:\n", index,
                 base_seed, data.size());
    hexdump(data);
    one(data);
    std::fprintf(stderr, "case %zu survived\n", index);
    return 0;
  }

  if ((argc >= 2 && !parse_u64_arg(argv[1], iterations)) ||
      (argc >= 3 && !parse_u64_arg(argv[2], base_seed))) {
    std::fprintf(stderr, "usage: %s [iterations] [base_seed]\n", argv[0]);
    return 2;
  }
  const bool trace = std::getenv("IWSCAN_FUZZ_TRACE") != nullptr;

  // The unmutated seeds run first; trace names them too, so a crashing
  // seed is attributable just like a crashing mutated case.
  for (std::size_t s = 0; s < corpus.size(); ++s) {
    if (trace) {
      std::fprintf(stderr, "seed %zu\n", s);
      std::fflush(stderr);
    }
    one(corpus[s]);
  }
  for (std::size_t i = 0; i < iterations; ++i) {
    if (trace) {
      std::fprintf(stderr, "case %zu\n", i);
      std::fflush(stderr);
    }
    const Input data = build_case(base_seed, i, corpus);
    one(data);
  }
  std::printf("%zu seed + %zu mutated inputs survived (base seed 0x%" PRIx64 ")\n",
              corpus.size(), iterations, base_seed);
  return 0;
}

}  // namespace iwscan::fuzz

// Every driver defines `void fuzz_one(std::span<const std::uint8_t>)` and
// `std::vector<iwscan::fuzz::Input> fuzz_corpus()`, then invokes this macro.
#ifdef IWSCAN_LIBFUZZER
#define IWSCAN_FUZZ_DRIVER(fuzz_one_fn, corpus_fn)                            \
  extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,             \
                                        std::size_t size) {                   \
    fuzz_one_fn(std::span<const std::uint8_t>(data, size));                   \
    return 0;                                                                 \
  }
#else
#define IWSCAN_FUZZ_DRIVER(fuzz_one_fn, corpus_fn)                            \
  int main(int argc, char** argv) {                                           \
    return iwscan::fuzz::run_driver(argc, argv, fuzz_one_fn, corpus_fn());    \
  }
#endif
