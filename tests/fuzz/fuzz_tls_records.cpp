// Structured fuzz driver for the TLS wire codecs (tls/records, tls/handshake).
//
// Exercises the full hostile-responder path the scanner depends on:
// incremental record deframing (in adversarial chunk sizes), handshake
// splitting, and the ClientHello / ServerHello / Certificate decoders —
// with encode→decode round-trip checks on everything that parses.
#include <cstdio>
#include <cstdlib>
#include <span>

#include "fuzz_harness.hpp"
#include "tls/handshake.hpp"
#include "tls/records.hpp"

namespace {

using iwscan::fuzz::Input;

void require(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "tls property violated: %s\n", what);
    std::abort();
  }
}

void check_handshake_payload(std::span<const std::uint8_t> payload) {
  namespace tls = iwscan::tls;
  const auto messages = tls::split_handshakes(payload);
  if (!messages) return;
  for (const auto& message : *messages) {
    switch (message.type) {
      case tls::HandshakeType::ClientHello: {
        const auto hello = tls::ClientHello::decode(message.body);
        if (!hello) break;
        // Re-encoding drops unknown extensions, so assert semantic (not
        // byte) round-trip on the fields the scanner reads.
        const auto again = tls::ClientHello::decode(hello->encode());
        require(again.has_value(), "re-decode of re-encoded ClientHello failed");
        require(again->version == hello->version &&
                    again->random == hello->random &&
                    again->session_id == hello->session_id &&
                    again->cipher_suites == hello->cipher_suites &&
                    again->server_name == hello->server_name,
                "ClientHello round trip changed scanner-visible fields");
        break;
      }
      case tls::HandshakeType::ServerHello: {
        const auto hello = tls::ServerHello::decode(message.body);
        if (!hello) break;
        const auto again = tls::ServerHello::decode(hello->encode());
        require(again.has_value(), "re-decode of re-encoded ServerHello failed");
        require(again->version == hello->version &&
                    again->cipher_suite == hello->cipher_suite &&
                    again->ocsp_stapling == hello->ocsp_stapling,
                "ServerHello round trip changed scanner-visible fields");
        break;
      }
      case tls::HandshakeType::Certificate: {
        const auto chain = tls::CertificateChain::decode(message.body);
        if (!chain) break;
        (void)chain->total_certificate_bytes();
        const auto again = tls::CertificateChain::decode(chain->encode());
        require(again.has_value() && again->certificates == chain->certificates,
                "CertificateChain round trip changed the chain");
        break;
      }
      case tls::HandshakeType::ServerHelloDone:
      case tls::HandshakeType::CertificateStatus:
        // Framing-only / not independently round-tripped here; raw type
        // bytes outside the enum fall out of the switch without matching.
        break;
    }
  }
}

void fuzz_one(std::span<const std::uint8_t> data) {
  namespace tls = iwscan::tls;

  // Deframe the input as a TCP byte stream delivered in hostile chunk
  // sizes (1, then 7, then 64, cycling — all derived deterministically).
  static constexpr std::size_t kChunks[] = {1, 7, 64};
  tls::RecordReader reader;
  std::size_t pos = 0;
  std::size_t chunk_index = 0;
  while (pos < data.size()) {
    const std::size_t n = std::min(kChunks[chunk_index % 3], data.size() - pos);
    reader.feed(data.subspan(pos, n));
    ++chunk_index;
    pos += n;
    while (const auto record = reader.next()) {
      require(record->payload.size() <= tls::kMaxRecordPayload + 256,
              "RecordReader surfaced an oversized record");
      // Byte-exact record round trip. The reader tolerates slightly
      // oversized records (kMax + 256); the encoder, by design, does not.
      if (record->payload.size() <= tls::kMaxRecordPayload) {
        iwscan::net::Bytes wire;
        tls::encode_record(*record, wire);
        tls::RecordReader verify;
        verify.feed(wire);
        const auto again = verify.next();
        require(again && again->type == record->type &&
                    again->version == record->version &&
                    again->payload == record->payload,
                "record encode/decode round trip mismatch");
      }

      if (record->type == tls::ContentType::Handshake) {
        check_handshake_payload(record->payload);
      } else if (record->type == tls::ContentType::Alert) {
        (void)tls::decode_alert(record->payload);
      }
    }
    if (reader.malformed()) break;
  }

  // Also aim the inner decoders directly at the raw input: a responder can
  // put anything inside a well-formed record.
  check_handshake_payload(data);
  (void)tls::ClientHello::decode(data);
  (void)tls::ServerHello::decode(data);
  (void)tls::CertificateChain::decode(data);
  (void)tls::decode_alert(data);
}

std::vector<Input> fuzz_corpus() {
  namespace tls = iwscan::tls;
  namespace net = iwscan::net;
  std::vector<Input> corpus;

  // A plausible ClientHello record.
  tls::ClientHello client;
  client.random.fill(0x42);
  client.cipher_suites = {0xc02f, 0xc030, 0x009e};
  client.server_name = "scan-target.example";
  client.ocsp_stapling = true;
  {
    net::Bytes wire;
    tls::encode_fragmented(
        tls::ContentType::Handshake, tls::kTls10,
        tls::encode_handshake(tls::HandshakeType::ClientHello, client.encode()), wire);
    corpus.push_back(wire);
  }

  // A first flight: ServerHello + Certificate + ServerHelloDone.
  tls::ServerHello server;
  server.random.fill(0x24);
  server.cipher_suite = 0xc02f;
  server.extra_extension_bytes = 120;
  tls::CertificateChain chain;
  chain.certificates.push_back(net::Bytes(800, 0xd5));
  chain.certificates.push_back(net::Bytes(1100, 0xca));
  {
    net::Bytes flight;
    const auto append = [&flight](const net::Bytes& bytes) {
      flight.insert(flight.end(), bytes.begin(), bytes.end());
    };
    append(tls::encode_handshake(tls::HandshakeType::ServerHello, server.encode()));
    append(tls::encode_handshake(tls::HandshakeType::Certificate, chain.encode()));
    append(tls::encode_handshake(tls::HandshakeType::ServerHelloDone, {}));
    net::Bytes wire;
    tls::encode_fragmented(tls::ContentType::Handshake, tls::kTls12, flight, wire);
    corpus.push_back(wire);
  }

  // A fatal alert record.
  {
    tls::Record record;
    record.type = tls::ContentType::Alert;
    record.payload = tls::encode_alert(tls::AlertLevel::Fatal,
                                       tls::AlertDescription::HandshakeFailure);
    net::Bytes wire;
    tls::encode_record(record, wire);
    corpus.push_back(wire);
  }

  // Truncated record header (3 of 5 bytes) — must stay pending, not parse.
  corpus.push_back(Input{22, 3, 1});
  return corpus;
}

}  // namespace

IWSCAN_FUZZ_DRIVER(fuzz_one, fuzz_corpus)
