// Structured fuzz driver for the HTTP codec (httpd/http_message).
//
// Covers both directions the scanner uses: parse_response_head on probe
// answers (status line, headers, Content-Length, Location → redirect
// following) and the incremental RequestParser the simulated servers run
// on attacker-supplied request bytes.
#include <cstdio>
#include <cstdlib>
#include <span>

#include "fuzz_harness.hpp"
#include "httpd/http_message.hpp"
#include "util/bytes.hpp"

namespace {

using iwscan::fuzz::Input;

void require(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "http property violated: %s\n", what);
    std::abort();
  }
}

void fuzz_one(std::span<const std::uint8_t> data) {
  namespace http = iwscan::http;
  const std::string_view text = iwscan::util::as_text(data);

  // ---- Response path (scanner side) ----
  if (const auto head = http::parse_response_head(text)) {
    require(head->header_bytes <= text.size(),
            "header_bytes points past the input");
    require(head->status >= 100 && head->status <= 999,
            "status outside the three-digit range accepted");
    (void)head->content_length();  // must never overflow or throw
    if (const auto location = head->header("Location")) {
      if (const auto parts = http::parse_location(*location)) {
        require(parts->host.empty() || parts->host.find('/') == std::string::npos,
                "parsed Location host contains a path separator");
        require(!parts->path.empty(), "parsed Location path is empty");
      }
    }
  }

  // ---- Request path (simulated server side), hostile chunk sizes ----
  static constexpr std::size_t kChunks[] = {1, 5, 113};
  http::RequestParser parser;
  std::size_t pos = 0;
  std::size_t chunk_index = 0;
  auto status = http::RequestParser::Status::NeedMore;
  while (pos < text.size() && status == http::RequestParser::Status::NeedMore) {
    const std::size_t n = std::min(kChunks[chunk_index % 3], text.size() - pos);
    status = parser.feed(text.substr(pos, n));
    ++chunk_index;
    pos += n;
  }
  if (status == http::RequestParser::Status::Complete) {
    const auto& request = parser.request();
    require(request.version.starts_with("HTTP/"),
            "completed request with a non-HTTP version token");
    (void)request.wants_close();
    (void)request.header("Host");
    // Whole-buffer feed must agree with the chunked feed.
    http::RequestParser whole;
    require(whole.feed(text.substr(0, pos)) == http::RequestParser::Status::Complete,
            "chunked vs whole-buffer parse disagree");
    require(whole.request().method == request.method &&
                whole.request().target == request.target,
            "chunked vs whole-buffer request line disagree");
  } else if (status == http::RequestParser::Status::Invalid) {
    // Latched: anything fed afterwards must keep reporting Invalid.
    require(parser.feed("GET / HTTP/1.1\r\n\r\n") ==
                http::RequestParser::Status::Invalid,
            "Invalid state did not latch");
  }

  // parse_location accepts arbitrary text directly.
  (void)http::parse_location(text);
}

std::vector<Input> fuzz_corpus() {
  namespace http = iwscan::http;
  std::vector<Input> corpus;
  const auto push = [&corpus](std::string_view text) {
    corpus.emplace_back(text.begin(), text.end());
  };

  http::HttpResponse ok;
  ok.status = 200;
  ok.reason = "OK";
  ok.headers.push_back({"Server", "Apache/2.4"});
  ok.headers.push_back({"Content-Type", "text/html"});
  ok.body = "<html><body>hello</body></html>";
  push(ok.serialize());

  http::HttpResponse redirect;
  redirect.status = 301;
  redirect.reason = "Moved Permanently";
  redirect.headers.push_back({"Location", "http://www.example.com:8080/path?q=1"});
  push(redirect.serialize());

  push("GET / HTTP/1.1\r\nHost: example.com\r\nConnection: close\r\n\r\n");
  push("GET /this-is-a-long-uri-xxxxxxxxxxxxxxxx HTTP/1.0\r\n\r\n");
  push("HTTP/1.1 404 Not Found\r\nContent-Length: 99999999999999999999\r\n\r\n");
  push("HTTP/1.1 200 OK\r\nServer: x\r\n");  // missing CRLFCRLF
  push("220 device ready\r\n");              // raw banner, not HTTP at all
  return corpus;
}

}  // namespace

IWSCAN_FUZZ_DRIVER(fuzz_one, fuzz_corpus)
