// Structured fuzz driver for the first-flight pacing schedule.
//
// Properties under test (the invariants pacing.hpp documents): for ANY
// decoded (IwConfig, mss, rtt, rto_deadline, seed) tuple the schedule is
//   * deterministic — building it twice yields identical slots;
//   * byte-exact — slot bytes sum to exactly iw.initial_cwnd(mss) and no
//     slot exceeds the effective segment size;
//   * monotone — offsets never decrease and the first is zero;
//   * RTO-safe — no slot lands at or past the retransmit deadline (the
//     spread is capped at 9/10 of it), so a paced sender never manufactures
//     the very retransmission the scanner keys on;
//   * burst-faithful — Burst mode, a single-slot window, or a non-positive
//     span collapse to an all-zero-offset schedule.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>

#include "fuzz_harness.hpp"
#include "tcpstack/pacing.hpp"

namespace {

using iwscan::fuzz::Input;

void require(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "pacing property violated: %s\n", what);
    std::abort();
  }
}

/// Little-endian field reader; missing bytes read as zero so truncated
/// mutations still decode to a valid (if degenerate) parameter tuple.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint64_t take(std::size_t bytes) {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      const std::uint8_t byte = at_ < data_.size() ? data_[at_++] : 0;
      value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

struct Decoded {
  iwscan::tcp::IwConfig iw;
  std::uint16_t mss = 0;
  iwscan::sim::SimTime rtt{};
  iwscan::sim::SimTime deadline{};
  std::uint64_t seed = 0;
};

/// Map arbitrary bytes onto a parameter tuple. Sizes are bounded (segments
/// ≤ 4096, byte budgets ≤ 256 KiB) so a hostile input cannot OOM the
/// driver; times span [-1s, ~50min] in nanoseconds to cover negative,
/// zero, and far-beyond-RTO magnitudes.
Decoded decode(std::span<const std::uint8_t> data) {
  namespace tcp = iwscan::tcp;
  Reader in(data);
  Decoded d;

  const auto flags = static_cast<std::uint8_t>(in.take(1));
  d.iw.policy = (flags & 1) != 0 ? tcp::IwPolicy::Bytes : tcp::IwPolicy::Segments;
  d.iw.pacing.mode =
      (flags & 2) != 0 ? tcp::PacingMode::Paced : tcp::PacingMode::Burst;
  d.iw.segments = static_cast<std::uint32_t>(in.take(2) % 4097);
  d.iw.bytes = static_cast<std::uint32_t>(in.take(4) % ((256u << 10) + 1));
  d.iw.pacing.spread_rtt_percent = static_cast<std::uint32_t>(in.take(4));
  d.iw.pacing.jitter_percent = static_cast<std::uint32_t>(in.take(4));
  d.mss = static_cast<std::uint16_t>(in.take(2));

  constexpr std::uint64_t kTimeSpan = 3'000'000'000'000ULL;  // 3000 s in ns
  constexpr std::int64_t kTimeFloor = -1'000'000'000;        // -1 s
  d.rtt = iwscan::sim::SimTime(
      kTimeFloor + static_cast<std::int64_t>(in.take(8) % kTimeSpan));
  d.deadline = iwscan::sim::SimTime(
      kTimeFloor + static_cast<std::int64_t>(in.take(8) % kTimeSpan));
  d.seed = in.take(8);
  return d;
}

/// floor(value·num/den), the same exact arithmetic pacing.cpp uses — the
/// oracle for the span cap must truncate identically.
std::uint64_t scale_u64(std::uint64_t value, std::uint64_t num,
                        std::uint64_t den) {
  if (den == 0) return 0;
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(value) * num) / den);
}

void fuzz_one(std::span<const std::uint8_t> data) {
  namespace tcp = iwscan::tcp;
  const Decoded d = decode(data);

  const auto schedule =
      tcp::build_pacing_schedule(d.iw, d.mss, d.rtt, d.deadline, d.seed);
  const auto again =
      tcp::build_pacing_schedule(d.iw, d.mss, d.rtt, d.deadline, d.seed);

  require(schedule.size() == again.size(), "rebuild changed the slot count");
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    require(schedule[i].offset == again[i].offset &&
                schedule[i].bytes == again[i].bytes,
            "rebuild changed a slot (schedule is not deterministic)");
  }

  const std::uint32_t cwnd = d.iw.initial_cwnd(d.mss);
  const std::uint32_t seg = d.mss > 0 ? d.mss : 1;
  require(schedule.size() == (cwnd + seg - 1) / seg,
          "slot count is not ceil(cwnd/mss)");

  std::uint64_t total_bytes = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    require(schedule[i].bytes > 0 && schedule[i].bytes <= seg,
            "slot bytes outside (0, mss]");
    total_bytes += schedule[i].bytes;
    if (i > 0) {
      require(schedule[i].offset >= schedule[i - 1].offset,
              "offsets are not monotone non-decreasing");
    }
  }
  require(total_bytes == cwnd, "slot bytes do not sum to the initial cwnd");
  if (!schedule.empty()) {
    require(schedule.front().offset == iwscan::sim::SimTime{},
            "first slot is not immediate");
  }

  // The span oracle, truncating exactly like the implementation: spread% of
  // the RTT, capped at 9/10 of the RTO deadline (negative times clamp to 0).
  const std::uint64_t rtt_ns =
      d.rtt.count() > 0 ? static_cast<std::uint64_t>(d.rtt.count()) : 0;
  const std::uint64_t deadline_ns =
      d.deadline.count() > 0 ? static_cast<std::uint64_t>(d.deadline.count()) : 0;
  const std::uint64_t span_ns =
      std::min(scale_u64(rtt_ns, d.iw.pacing.spread_rtt_percent, 100),
               scale_u64(deadline_ns, 9, 10));

  const bool bursts =
      !d.iw.pacing.paced() || schedule.size() <= 1 || span_ns == 0;
  for (const auto& slot : schedule) {
    if (bursts) {
      require(slot.offset == iwscan::sim::SimTime{},
              "burst-mode schedule has a nonzero offset");
      continue;
    }
    require(static_cast<std::uint64_t>(slot.offset.count()) <= span_ns,
            "slot offset exceeds the pacing span");
    require(deadline_ns == 0 ||
                static_cast<std::uint64_t>(slot.offset.count()) < deadline_ns,
            "slot lands at or past the RTO deadline");
  }
  if (!bursts) {
    require(static_cast<std::uint64_t>(schedule.back().offset.count()) ==
                span_ns,
            "last slot does not land on the span boundary");
  }
}

/// Well-formed seeds: the presets the simulator actually uses (IW10 burst,
/// CDN tiers paced over various spreads, a byte tier, jitter-free spacing,
/// and a deadline tight enough to engage the 9/10 cap).
std::vector<Input> fuzz_corpus() {
  namespace tcp = iwscan::tcp;
  struct Seed {
    tcp::IwConfig iw;
    std::uint16_t mss;
    std::int64_t rtt_ns;
    std::int64_t deadline_ns;
    std::uint64_t seed;
  };
  const Seed seeds[] = {
      {tcp::IwConfig::segments_of(10), 64, 20'000'000, 1'000'000'000, 1},
      {tcp::IwConfig::iw16().paced_over(400, 0), 64, 20'000'000,
       1'000'000'000, 0x5eedULL},
      {tcp::IwConfig::iw50().paced_over(800), 128, 120'000'000,
       1'000'000'000, 42},
      {tcp::IwConfig::byte_tier_kib(16).paced_over(1200), 64, 240'000'000,
       1'000'000'000, 7},
      {tcp::IwConfig::iw32().paced_over(10'000), 128, 500'000'000,
       100'000'000, 3},  // spread far past the deadline: the 9/10 cap rules
  };

  std::vector<Input> corpus;
  for (const auto& s : seeds) {
    Input bytes;
    auto put = [&bytes](std::uint64_t value, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
      }
    };
    std::uint8_t flags = 0;
    if (s.iw.policy == tcp::IwPolicy::Bytes) flags |= 1;
    if (s.iw.pacing.paced()) flags |= 2;
    put(flags, 1);
    put(s.iw.segments, 2);
    put(s.iw.bytes, 4);
    put(s.iw.pacing.spread_rtt_percent, 4);
    put(s.iw.pacing.jitter_percent, 4);
    put(s.mss, 2);
    constexpr std::int64_t kTimeFloor = -1'000'000'000;
    put(static_cast<std::uint64_t>(s.rtt_ns - kTimeFloor), 8);
    put(static_cast<std::uint64_t>(s.deadline_ns - kTimeFloor), 8);
    put(s.seed, 8);
    corpus.push_back(std::move(bytes));
  }
  return corpus;
}

}  // namespace

IWSCAN_FUZZ_DRIVER(fuzz_one, fuzz_corpus)
