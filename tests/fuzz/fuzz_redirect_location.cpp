// Structured fuzz driver for 301 Location parsing (http::parse_location) —
// the single input an adversarial redirecting host fully controls. The HTTP
// probe strategy builds its visited-URL loop detector from the (host, path)
// this parser returns, so the invariants below are what keep a hostile
// Location header from derailing redirect following (see the RedirectLoop
// profile in inetmodel/adversarial.hpp).
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>

#include "fuzz_harness.hpp"
#include "httpd/http_message.hpp"
#include "util/bytes.hpp"

namespace {

using iwscan::fuzz::Input;

void require(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "location property violated: %s\n", what);
    std::abort();
  }
}

void fuzz_one(std::span<const std::uint8_t> data) {
  namespace http = iwscan::http;
  const std::string_view text = iwscan::util::as_text(data);

  const auto parts = http::parse_location(text);
  {
    // Deterministic: same bytes, same verdict.
    const auto again = http::parse_location(text);
    require(parts.has_value() == again.has_value(),
            "parse verdict differs between identical calls");
  }
  if (!parts) return;

  // The redirect follower concatenates host + path into its visited-set
  // key and its next request line; both must be well-formed.
  require(!parts->path.empty(), "parsed path is empty");
  require(parts->path.front() == '/', "parsed path does not start with '/'");
  require(parts->host.find('/') == std::string::npos,
          "parsed host contains a path separator");
  require(parts->host.find(':') == std::string::npos,
          "parsed host still carries a port");

  // Normalization is idempotent: re-serializing the parts and re-parsing
  // yields the same parts — a hostile Location cannot smuggle a different
  // target past the visited-set by round-tripping.
  if (!parts->host.empty()) {
    const std::string rebuilt = "http://" + parts->host + parts->path;
    const auto reparsed = http::parse_location(rebuilt);
    require(reparsed.has_value(), "normalized absolute Location fails to parse");
    require(reparsed->host == parts->host && reparsed->path == parts->path,
            "absolute Location round-trip is not idempotent");
  } else {
    const auto reparsed = http::parse_location(parts->path);
    require(reparsed.has_value(), "normalized relative Location fails to parse");
    require(reparsed->host.empty() && reparsed->path == parts->path,
            "relative Location round-trip is not idempotent");
  }
}

std::vector<Input> fuzz_corpus() {
  std::vector<Input> corpus;
  const auto push = [&corpus](std::string_view text) {
    corpus.emplace_back(text.begin(), text.end());
  };

  // The shapes real (and adversarially looping) servers emit.
  push("http://www.example.com/");
  push("https://www.example.com:8443/path?q=1#frag");
  push("http://example.com");  // authority only, no path
  push("/loop-a");
  push("/loop-b");
  push("  /padded/path  ");
  push("HTTP://UPPER.example/MiXeD");
  push("//protocol-relative.example/x");
  push("http:///no-authority");
  push("http://:8080/port-only");
  push("/../../../etc/passwd");
  push("relative-no-slash");
  push("");
  push("http://host/very" + std::string(2000, 'x'));
  push("http://ho\tst/\r\n");
  push("\xff\xfe http://bytes.example/\x80");
  return corpus;
}

}  // namespace

IWSCAN_FUZZ_DRIVER(fuzz_one, fuzz_corpus)
