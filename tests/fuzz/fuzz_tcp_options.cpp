// Structured fuzz driver for the TCP options codec (netbase/tcp_options).
//
// Property under test: decode_tcp_options never crashes or reads out of
// bounds on arbitrary bytes, and everything it accepts survives an exact
// encode→decode round trip (NOP padding aside, which decode consumes).
#include <cstdio>
#include <cstdlib>
#include <span>

#include "fuzz_harness.hpp"
#include "netbase/tcp_options.hpp"

namespace {

using iwscan::fuzz::Input;

void require(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "tcp_options property violated: %s\n", what);
    std::abort();
  }
}

void fuzz_one(std::span<const std::uint8_t> data) {
  namespace net = iwscan::net;
  const auto decoded = net::decode_tcp_options(data);
  if (!decoded) return;  // rejecting malformed input is a valid outcome

  // Accessors must tolerate any accepted option list.
  (void)net::find_mss(*decoded);
  (void)net::find_window_scale(*decoded);
  (void)net::has_sack_permitted(*decoded);

  net::Bytes wire;
  net::WireWriter writer(wire);
  net::encode_tcp_options(*decoded, writer);
  require(wire.size() == net::encoded_tcp_options_size(*decoded),
          "encoded size disagrees with encoded_tcp_options_size");
  require(wire.size() % 4 == 0, "encoded options not padded to 32-bit boundary");

  const auto again = net::decode_tcp_options(wire);
  require(again.has_value(), "re-decode of our own encoding failed");
  require(*again == *decoded, "decode(encode(options)) != options");
}

std::vector<Input> fuzz_corpus() {
  namespace net = iwscan::net;
  std::vector<Input> corpus;
  const std::vector<std::vector<net::TcpOption>> seeds = {
      {net::MssOption{1460}, net::WindowScaleOption{7}, net::SackPermittedOption{}},
      {net::MssOption{536}},
      {net::WindowScaleOption{14}, net::MssOption{9000}},
      {net::UnknownOption{8, net::Bytes{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
       net::SackPermittedOption{}},
      {},
  };
  for (const auto& options : seeds) {
    net::Bytes wire;
    net::WireWriter writer(wire);
    net::encode_tcp_options(options, writer);
    corpus.push_back(wire);
  }
  // A hand-built pathological seed: END mid-list, zero-length option after.
  corpus.push_back(Input{2, 4, 5, 0xb4, 0, 3, 0, 3});
  return corpus;
}

}  // namespace

IWSCAN_FUZZ_DRIVER(fuzz_one, fuzz_corpus)
