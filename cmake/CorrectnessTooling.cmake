# Opt-in correctness tooling: sanitizers, clang-tidy, libFuzzer.
#
# Included from the top-level CMakeLists.txt *before* any target is defined
# so the flags reach every TU. See README.md "Correctness tooling" and
# CMakePresets.json for the canonical configurations (asan-ubsan, tsan, tidy).

# Comma-separated -fsanitize groups, e.g. "address,undefined" or "thread".
set(IWSCAN_SANITIZE "" CACHE STRING
    "Sanitizers to instrument with (address,undefined | thread | leak | '')")

option(IWSCAN_CLANG_TIDY "Run clang-tidy (repo .clang-tidy) on every compiled TU" OFF)
option(IWSCAN_LIBFUZZER
       "Build tests/fuzz drivers as libFuzzer targets (requires Clang)" OFF)
option(IWSCAN_COVERAGE
       "Instrument for line coverage (gcov/llvm-cov; see tools/coverage)" OFF)

if(IWSCAN_COVERAGE)
  if(IWSCAN_SANITIZE)
    message(FATAL_ERROR "IWSCAN_COVERAGE cannot be combined with IWSCAN_SANITIZE")
  endif()
  # -O0 keeps line tables honest (no lines folded away by the optimizer);
  # the coverage lane measures, it does not benchmark.
  add_compile_options(--coverage -O0 -g)
  add_link_options(--coverage)
  message(STATUS "iwscan: coverage instrumentation enabled")
endif()

if(IWSCAN_SANITIZE)
  if(IWSCAN_SANITIZE MATCHES "thread" AND IWSCAN_SANITIZE MATCHES "address")
    message(FATAL_ERROR "IWSCAN_SANITIZE: 'thread' cannot be combined with 'address'")
  endif()
  set(_iwscan_san_flags
      -fsanitize=${IWSCAN_SANITIZE}
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
  add_compile_options(${_iwscan_san_flags})
  add_link_options(-fsanitize=${IWSCAN_SANITIZE})
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    # Sanitizer instrumentation changes GCC's inlining enough to trip
    # -Wmaybe-uninitialized false positives inside libstdc++ (variant/vector
    # internals). The plain build keeps the warning; the instrumented build
    # relies on the sanitizers themselves to catch real uninitialized reads.
    add_compile_options(-Wno-maybe-uninitialized)
  endif()
  message(STATUS "iwscan: sanitizers enabled: ${IWSCAN_SANITIZE}")
endif()

if(IWSCAN_CLANG_TIDY)
  find_program(IWSCAN_CLANG_TIDY_EXE
               NAMES clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17
                     clang-tidy-16 clang-tidy-15)
  if(NOT IWSCAN_CLANG_TIDY_EXE)
    message(FATAL_ERROR
            "IWSCAN_CLANG_TIDY=ON but no clang-tidy executable was found; "
            "install clang-tidy or configure without the 'tidy' preset")
  endif()
  # The repo .clang-tidy supplies the check list; --warnings-as-errors there.
  set(CMAKE_CXX_CLANG_TIDY ${IWSCAN_CLANG_TIDY_EXE})
  message(STATUS "iwscan: clang-tidy wired into the build: ${IWSCAN_CLANG_TIDY_EXE}")
endif()

if(IWSCAN_LIBFUZZER AND NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR
          "IWSCAN_LIBFUZZER=ON requires Clang (libFuzzer ships with it); "
          "current compiler: ${CMAKE_CXX_COMPILER_ID}. The deterministic "
          "corpus drivers in tests/fuzz run under any compiler instead.")
endif()
